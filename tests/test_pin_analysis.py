"""The register-preservation (Pin-style) analysis tool."""

from __future__ import annotations

from repro.analysis.pin import RegisterPreservationTool
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.libc.variants import GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX
from repro.workloads.coreutils import (
    COREUTIL_NAMES,
    THREAD_LINKED,
    build_coreutil,
    run_coreutil,
    setup_fs,
)

from tests.conftest import asm, emit_exit, emit_syscall, finish


def _run_with_pin(machine, image):
    tool = RegisterPreservationTool()
    machine.kernel.cpu.add_hook(tool)
    proc = machine.load(image)
    machine.run(until=lambda: not proc.alive, max_instructions=2_000_000)
    machine.kernel.cpu.remove_hook(tool)
    assert proc.exit_code == 0, (proc.exit_code, proc.term_signal)
    return tool


def test_write_syscall_read_is_a_finding(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 7)
    a.movq_xg("xmm3", "rax")  # write xmm3
    emit_syscall(a, "getpid")  # intervening syscall
    a.movq_gx("rbx", "xmm3")  # read xmm3: the app expects preservation
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert tool.expects_xstate_preservation()
    finding = tool.xstate_findings[0]
    assert finding.register == "xmm3"
    assert finding.syscall == "getpid"


def test_write_read_without_syscall_is_not_a_finding(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 7)
    a.movq_xg("xmm3", "rax")
    a.movq_gx("rbx", "xmm3")  # read before any syscall
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert not tool.expects_xstate_preservation()


def test_rewrite_before_read_clears_expectation(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 7)
    a.movq_xg("xmm3", "rax")
    emit_syscall(a, "getpid")
    a.mov_imm("rax", 9)
    a.movq_xg("xmm3", "rax")  # overwritten after the syscall
    a.movq_gx("rbx", "xmm3")
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert not tool.expects_xstate_preservation()


def test_kernel_clobbered_gprs_are_not_findings(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rcx", 5)
    a.mov_imm("r11", 6)
    emit_syscall(a, "getpid")
    a.mov("rbx", "rcx")  # reading rcx after a syscall: legal clobber
    a.mov("rbx", "r11")
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    clobber_findings = [
        f for f in tool.gpr_findings if f.register in ("rcx", "r11", "rax")
    ]
    assert not clobber_findings


def test_callee_saved_gpr_expectation_is_recorded(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 5)
    emit_syscall(a, "getpid")
    a.cmpi("rbx", 5)  # read rbx across the syscall
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert any(f.register == "rbx" for f in tool.gpr_findings)


def test_x87_tracked_as_unit(machine):
    a = asm()
    a.label("_start")
    a.fld1()
    emit_syscall(a, "getpid")
    a.mov("rbx", "rsp")
    a.subi("rbx", 64)
    a.fstp_mem("rbx", 0)  # reads the x87 stack after the syscall
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert any(f.component == "x87" for f in tool.xstate_findings)


def test_avx_component_distinct_from_sse(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 2)
    a.movq_xg("xmm4", "rax")
    a.vaddpd("xmm4", "xmm4")  # makes ymm4.high live
    emit_syscall(a, "getpid")
    a.vaddpd("xmm4", "xmm4")  # reads both xmm4 and ymm4.high
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    components = {f.component for f in tool.xstate_findings}
    assert components == {"sse", "avx"}


def test_dedup_same_site(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 2)
    a.label("loop")
    a.mov_imm("rax", 7)
    a.movq_xg("xmm0", "rax")
    emit_syscall(a, "getpid")
    a.movq_gx("rcx", "xmm0")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    tool = _run_with_pin(machine, finish(a))
    assert len(tool.xstate_findings) == 1  # identical (site, syscall) deduped


# ---------------------------------------------------------------- coreutils
def test_all_coreutils_run_clean_on_both_variants():
    for variant in (GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX):
        for name in COREUTIL_NAMES:
            machine = Machine()
            process = run_coreutil(machine, name, variant)
            assert process.exit_code == 0, (name, variant.name)


def test_coreutils_do_real_work():
    machine = Machine()
    process = run_coreutil(machine, "cp")
    assert process.exit_code == 0
    assert machine.fs.lookup("/home/user/copy.txt").data == machine.fs.lookup(
        "/home/user/file.txt"
    ).data

    machine = Machine()
    run_coreutil(machine, "mkdir")
    assert machine.fs.lookup("/home/user/newdir").is_dir

    machine = Machine()
    run_coreutil(machine, "rm")
    assert not machine.fs.exists("/home/user/file.txt")

    machine = Machine()
    process = run_coreutil(machine, "cat")
    assert b"quick brown fox" in process.stdout

    machine = Machine()
    process = run_coreutil(machine, "ls")
    assert b"file.txt" in process.stdout

    machine = Machine()
    process = run_coreutil(machine, "pwd")
    assert process.stdout.startswith(b"/")


def test_thread_linked_set_matches_table3_ubuntu_column():
    assert THREAD_LINKED == {"ls", "mkdir", "mv", "cp"}
    assert len(THREAD_LINKED) / len(COREUTIL_NAMES) == 0.4  # the paper's 40%


def test_pthread_init_listing1_only_for_thread_linked(machine):
    setup_fs(machine)
    tool = RegisterPreservationTool()
    machine.kernel.cpu.add_hook(tool)
    proc = machine.load(build_coreutil("touch", GLIBC_231_UBUNTU))
    machine.run(until=lambda: not proc.alive, max_instructions=2_000_000)
    assert not tool.expects_xstate_preservation()
