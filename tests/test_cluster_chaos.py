"""Fleet fault tolerance: chaos injection, health-checked failover,
deadline/retry/breaker machinery (PR 10).

Four layers of coverage:

* **byte-identity** — with the fault layer inactive (no plan, an *empty*
  plan, or a configured :class:`RetryPolicy` alone) the cluster report is
  byte-identical to the fault-free cluster, fork-Pool and inline, for
  shards in {1, 2, 4};
* **end-to-end chaos** — seeded crash / hang / degraded / hostile faults
  complete 100 % of the requests via failover and retry (no lost or
  duplicated ids), same seed → byte-identical report, hung shards return
  within their deadline with ``-ETIMEDOUT`` ring completions;
* **control plane units** — :class:`HealthModel` transitions,
  :class:`CircuitBreaker` cooldown/probe cycle, balancer down-shard
  re-planning, :class:`RetryPolicy` backoff determinism;
* **kernel** — ``Machine(ring_park_timeout=...)`` bounds parked ring
  entries: past the deadline they complete ``-ETIMEDOUT`` instead of
  parking forever, and the errno renders in strace style.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ChaosPlan,
    CircuitBreaker,
    Cluster,
    HealthModel,
    LoadBalancer,
    RetryPolicy,
    ShardFault,
)
from repro.cluster.health import CLOSED, DOWN, HALF_OPEN, OPEN, SUSPECT, UP
from repro.faults.rng import SplitMix64
from repro.kernel import errno
from repro.kernel.uring import HDR_SQ_TAIL
from repro.mem.pages import Perm
from repro.obs import events as K
from repro.obs.format import format_ret
from repro.obs.tracer import Tracer

from test_uring import idle_machine
from test_uring_async import AsyncRingMem, make_pipe, feed_pipe

pytestmark = [pytest.mark.chaos, pytest.mark.cluster]


def dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


def serve(shards, *, chaos=None, processes=False, requests=None, **kwargs):
    cluster = Cluster(shards=shards, processes=processes, chaos=chaos,
                      **kwargs)
    report = cluster.serve(requests=requests or 12 * shards, warmup=4)
    return cluster, report


def assert_fleet_invariants(report, *, requests, expect_down):
    """100 % completion, no lost/duplicated id, exactly the faulted
    shards down — the contract every chaos run must satisfy."""
    av = report["availability"]
    assert av["completed"] == requests, av["failed_ids"]
    assert av["failed"] == 0 and av["failed_ids"] == []
    assert av["duplicate_serves"] == 0
    assert av["success_rate"] == 1.0
    assert av["shards_down"] == expect_down


# ----------------------------------------------------- chaos-off identity
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("processes", [False, True],
                         ids=["inline", "fork"])
def test_chaos_off_reports_are_byte_identical(shards, processes):
    """An empty plan (and a RetryPolicy alone) must not perturb one byte
    of the fault-free report — the plain serve path is untouched."""
    requests = 12 * shards
    _, plain = serve(shards, processes=processes, requests=requests)
    _, empty = serve(shards, processes=processes, requests=requests,
                     chaos=ChaosPlan([]))
    _, retry_only = serve(shards, processes=processes, requests=requests,
                          retry=RetryPolicy(max_attempts=7))
    assert dumps(plain) == dumps(empty)
    assert dumps(plain) == dumps(retry_only)


# --------------------------------------------------------- crash failover
def test_crash_1of4_completes_all_requests():
    plan = ChaosPlan([ShardFault(shard=2, kind="crash", at_request=3)])
    cluster, report = serve(4, chaos=plan)
    assert_fleet_invariants(report, requests=48, expect_down=[2])
    av = report["availability"]
    # The 9 stranded requests failed over to live shards under backoff.
    assert av["failovers"] > 0 and av["retries"] > 0
    assert av["rounds"] >= 2
    assert av["backoff_cycles"][0] == RetryPolicy().backoff_base_cycles
    assert cluster.last_health.states[2] == DOWN
    assert cluster.last_health.breakers[2].state in (OPEN, HALF_OPEN, CLOSED)


def test_crash_same_seed_is_byte_identical():
    plan = ChaosPlan([ShardFault(shard=1, kind="crash", at_request=2)])
    _, rep1 = serve(4, chaos=plan)
    _, rep2 = serve(4, chaos=plan)
    assert dumps(rep1) == dumps(rep2)


def test_crash_fork_matches_inline():
    """Faults ride the shard configs, so the fork-Pool and inline runs
    inject — and report — identically."""
    plan = ChaosPlan([ShardFault(shard=0, kind="crash", at_request=4)])
    _, inline = serve(2, chaos=plan, requests=24)
    _, forked = serve(2, chaos=plan, requests=24, processes=True)
    assert dumps(inline) == dumps(forked)


def test_dead_at_boot_shard_merges_and_fails_over():
    """at_request=0: the shard never boots.  Its row carries result=None
    and obs=None — _merge_obs must tolerate both — and every one of its
    requests completes elsewhere."""
    plan = ChaosPlan([ShardFault(shard=3, kind="crash", at_request=0)])
    _, report = serve(4, chaos=plan)
    assert_fleet_invariants(report, requests=48, expect_down=[3])
    assert report["results"][3] is None
    assert report["obs"]["health_per_shard"][3] is None
    assert report["requests_per_shard"][3] == 0
    assert report["guest_mips_per_shard"][3] == 0.0


def test_crash_report_has_chaos_and_availability_sections():
    plan = ChaosPlan([ShardFault(shard=0, kind="crash", at_request=2)])
    _, report = serve(2, chaos=plan, requests=24)
    assert report["chaos"]["plan"] == [
        {"shard": 0, "kind": "crash", "at_request": 2}
    ]
    assert report["chaos"]["retry"]["max_attempts"] == 4
    av = report["availability"]
    assert av["latency_p99_cycles_incl_failures"] >= \
        report["latency_p99_cycles"]
    health = av["health"]
    assert health["states"][0] == DOWN
    assert any(e["kind"] == "health" and e["new"] == DOWN
               for e in health["log"])
    assert any(e["kind"] == "breaker" and e["new"] == OPEN
               for e in health["log"])


def test_crash_emits_fleet_obs_events():
    tracer = Tracer()
    plan = ChaosPlan([ShardFault(shard=1, kind="crash", at_request=2)])
    cluster = Cluster(shards=2, processes=False, chaos=plan, tracer=tracer)
    cluster.serve(requests=24, warmup=4)
    assert tracer.shard_downs == 1
    assert tracer.failovers >= 1
    assert tracer.retries >= 1
    kinds = {e.kind for e in tracer.events}
    assert {K.SHARD_DOWN, K.FAILOVER, K.RETRY, K.BREAKER} <= kinds
    down = next(e for e in tracer.events if e.kind == K.SHARD_DOWN)
    assert down.data["shard"] == 1 and down.data["reason"] == "crashed"


# ------------------------------------------------------------ hung shards
@pytest.mark.parametrize("batched", [False, "async"],
                         ids=["direct", "async"])
def test_hang_returns_within_deadline(batched):
    plan = ChaosPlan([ShardFault(shard=0, kind="hang", at_request=2,
                                 deadline_cycles=3_000_000)])
    _, report = serve(2, chaos=plan, requests=24, batched=batched)
    assert_fleet_invariants(report, requests=24, expect_down=[0])
    # The hung shard's run was cut at its deadline, not run to stall.
    from repro.cpu.costs import CostModel

    row = report["results"][0]
    assert row["deadline_hit"]
    assert row["measured_seconds"] * CostModel().frequency_hz <= 3_000_000
    if batched == "async":
        # In-flight parked entries cancelled with -ETIMEDOUT.
        assert report["availability"]["ring_timeouts"] > 0
        assert report["obs"]["ring_timeouts"] > 0


def test_hang_same_seed_is_byte_identical():
    plan = ChaosPlan([ShardFault(shard=1, kind="hang", at_request=3,
                                 deadline_cycles=3_000_000)])
    _, rep1 = serve(2, chaos=plan, requests=24, batched="async")
    _, rep2 = serve(2, chaos=plan, requests=24, batched="async")
    assert dumps(rep1) == dumps(rep2)


# ------------------------------------------------- degraded + per-request
def test_degraded_shard_times_out_and_retries():
    """A slow shard blows the per-request deadline; the health model
    demotes it (suspect, then down) and retries land on the fast one."""
    plan = ChaosPlan([ShardFault(shard=1, kind="degraded",
                                 slow_cycles=300_000)])
    cluster, report = serve(2, chaos=plan, requests=24,
                            deadline_cycles=250_000)
    assert_fleet_invariants(report, requests=24, expect_down=[1])
    av = report["availability"]
    assert av["timeouts"] > 0 and av["retries"] > 0
    log = av["health"]["log"]
    states = [e["new"] for e in log
              if e["kind"] == "health" and e["shard"] == 1]
    assert states[:2] == [SUSPECT, DOWN]


def test_deadline_only_marks_no_shard_down_when_all_meet_it():
    """Arming a generous per-request deadline alone takes the faulted
    path but fails nothing."""
    _, report = serve(2, requests=24, deadline_cycles=50_000_000)
    assert_fleet_invariants(report, requests=24, expect_down=[])
    assert report["availability"]["rounds"] == 1
    assert report["availability"]["timeouts"] == 0


# ------------------------------------------------------------ hostile env
def test_hostile_shard_demotes_but_still_serves():
    """Attach-time hostile env forces the PR 5 ladder down to sud_only;
    the shard stays up and the fleet completes everything."""
    plan = ChaosPlan([ShardFault(shard=1, kind="hostile")])
    _, report = serve(2, chaos=plan, requests=24, tool="lazypoline")
    assert_fleet_invariants(report, requests=24, expect_down=[])
    health = report["obs"]["health_per_shard"]
    assert health[0]["mode"] == "full_hybrid"
    assert health[1]["mode"] == "sud_only"
    assert health[1]["degradations"]


# --------------------------------------------------------- health + breaker
def test_health_hard_failure_downs_immediately():
    model = HealthModel(2)
    model.observe(0, {"status": "crashed", "assigned": 6, "served": 2,
                      "timeouts": 0}, round_=0)
    assert model.states == [DOWN, UP]
    assert model.breakers[0].state == OPEN
    assert model.routable() == [1]


def test_health_soft_failure_needs_two_bad_rounds():
    model = HealthModel(1, suspect_fraction=0.25)
    bad = {"status": "ok", "assigned": 8, "served": 8, "timeouts": 4}
    model.observe(0, bad, round_=0)
    assert model.states == [SUSPECT]
    assert model.routable() == [0]  # suspect still serves
    model.observe(0, bad, round_=1)
    assert model.states == [DOWN]


def test_health_clean_round_recovers_suspect():
    model = HealthModel(1)
    model.observe(0, {"status": "ok", "assigned": 8, "served": 8,
                      "timeouts": 4}, round_=0)
    assert model.states == [SUSPECT]
    model.observe(0, {"status": "ok", "assigned": 8, "served": 8,
                      "timeouts": 0}, round_=1)
    assert model.states == [UP]


def test_breaker_cooldown_probe_cycle():
    """closed -> open on down; half-open after the cooldown; a bounded
    clean probe closes it and the shard rejoins."""
    model = HealthModel(2, cooldown_rounds=1, probe_requests=2)
    model.observe(0, {"status": "hung", "assigned": 4, "served": 0,
                      "timeouts": 0}, round_=1)
    assert model.breakers[0].state == OPEN
    assert model.routable() == [1]
    assert model.probe_quota(0) is None
    model.begin_round(2)
    assert model.breakers[0].state == OPEN  # still cooling down
    model.begin_round(3)
    assert model.breakers[0].state == HALF_OPEN
    assert model.routable() == [0, 1]
    assert model.probe_quota(0) == 2
    model.observe(0, {"status": "ok", "assigned": 2, "served": 2,
                      "timeouts": 0}, round_=3)
    assert model.states[0] == UP
    assert model.breakers[0].state == CLOSED
    assert model.probe_quota(0) is None


def test_breaker_failed_probe_reopens():
    breaker = CircuitBreaker(cooldown_rounds=1)
    breaker.trip(1)
    assert breaker.tick(3)
    assert breaker.state == HALF_OPEN
    assert breaker.trip(3)
    assert breaker.state == OPEN and breaker.opened_round == 3


# -------------------------------------------------- balancer down-shards
@pytest.mark.parametrize("policy", ["round_robin", "least_conn",
                                    "consistent_hash"])
def test_replan_routes_only_to_live_shards(policy):
    balancer = LoadBalancer(4, policy)
    balancer.plan(48)
    balancer.set_down({2})
    routed = balancer.replan(list(range(12)))
    assert routed and all(shard != 2 for _, shard in routed)
    assert [rid for rid, _ in routed] == list(range(12))


def test_set_down_everything_is_an_error():
    balancer = LoadBalancer(2, "round_robin")
    balancer.plan(8)
    with pytest.raises(RuntimeError):
        balancer.set_down({0, 1})


def test_consistent_hash_failover_is_sticky_for_sessions():
    """Re-planned session requests migrate off the down shard exactly
    once and stay with their session's new home."""
    balancer = LoadBalancer(4, "consistent_hash")
    balancer.plan(64, sessions=8)
    victim = balancer.assignments[0]
    moved = [rid for rid, s in enumerate(balancer.assignments)
             if s == victim]
    balancer.set_down({victim})
    routed = dict(balancer.replan(moved, sessions=8))
    assert set(routed.values()).isdisjoint({victim})
    events = balancer.session_events[-len(moved):]
    assert "migrate" in events


def test_retry_backoff_is_capped_exponential_and_deterministic():
    policy = RetryPolicy(max_attempts=6, backoff_base_cycles=100,
                         backoff_cap_cycles=500)
    assert [policy.backoff(r) for r in range(1, 6)] == \
        [100, 200, 400, 500, 500]
    jittered = RetryPolicy(backoff_base_cycles=100, jitter_cycles=50)
    a = [jittered.backoff(r, SplitMix64(7)) for r in range(1, 4)]
    b = [jittered.backoff(r, SplitMix64(7)) for r in range(1, 4)]
    assert a == b
    assert all(100 * 2 ** (r - 1) <= x < 100 * 2 ** (r - 1) + 50
               for r, x in enumerate(a, start=1))


# ------------------------------------------------------------- kernel level
def test_ring_park_timeout_completes_etimedout():
    """A bounded park: a read on a never-fed pipe cancels with
    -ETIMEDOUT once the park deadline passes, instead of parking
    forever."""
    tracer = Tracer()
    machine, task = idle_machine(ring_park_timeout=50_000, tracer=tracer)
    rfd, _wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "read", rfd, buf, 8, user_data=0xB0)
    ring.w64(HDR_SQ_TAIL, 1)
    assert ring.enter() == 0
    waiter = task.ring_waiters[0]
    deadline = waiter.deadline
    assert deadline is not None and deadline > machine.kernel.clock
    # Before the deadline the entry stays parked...
    assert ring.enter() == 0
    assert task.ring_waiters
    # ...past it, the next drive cancels it with -ETIMEDOUT.
    machine.kernel.clock = deadline
    assert ring.enter() == 1
    assert not task.ring_waiters
    assert ring.result(0) == -errno.ETIMEDOUT
    assert tracer.ring_timeouts == 1
    timeout_events = [e for e in tracer.events
                      if e.kind == K.RING_COMPLETE
                      and e.data["ret"] == -errno.ETIMEDOUT]
    assert timeout_events


def test_ring_park_deadline_beats_late_data():
    """Data arriving after the deadline races deterministically: the
    deadline check runs first, so the entry still times out."""
    machine, task = idle_machine(ring_park_timeout=10_000)
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "read", rfd, buf, 8, user_data=0xB1)
    ring.w64(HDR_SQ_TAIL, 1)
    assert ring.enter() == 0
    machine.kernel.clock = task.ring_waiters[0].deadline + 1
    feed_pipe(machine, task, wfd, b"late")
    assert ring.enter() == 1
    assert ring.result(0) == -errno.ETIMEDOUT


def test_unbounded_machines_never_time_out_parks():
    """Without ring_park_timeout, waiter deadlines stay None — the
    pre-PR-10 parking behaviour, byte for byte."""
    machine, task = idle_machine()
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "read", rfd, buf, 8, user_data=0xB2)
    ring.w64(HDR_SQ_TAIL, 1)
    assert ring.enter() == 0
    assert task.ring_waiters[0].deadline is None
    machine.kernel.clock += 10_000_000
    assert ring.enter() == 0
    assert task.ring_waiters
    feed_pipe(machine, task, wfd, b"data")
    assert ring.enter() == 1
    assert ring.result(0) == 4


def test_etimedout_renders_in_strace_style():
    assert errno.ETIMEDOUT == 110
    assert errno.errno_name(errno.ETIMEDOUT) == "ETIMEDOUT"
    assert format_ret(-errno.ETIMEDOUT) == "-1 ETIMEDOUT"


# -------------------------------------------------------------- plan units
def test_chaos_plan_round_trips_json():
    plan = ChaosPlan([
        ShardFault(shard=0, kind="crash", at_request=3),
        ShardFault(shard=2, kind="hang", deadline_cycles=1_000_000),
    ])
    again = ChaosPlan.from_json(plan.to_json())
    assert again.to_json() == plan.to_json()
    assert again.fault_for(2).kind == "hang"
    assert again.fault_for(1) is None


def test_chaos_plan_rejects_bad_input():
    with pytest.raises(ValueError):
        ShardFault(shard=0, kind="meteor")
    with pytest.raises(ValueError):
        ChaosPlan([ShardFault(shard=0, kind="crash"),
                   ShardFault(shard=0, kind="hang")])
    with pytest.raises(ValueError):
        Cluster(shards=2, chaos=[ShardFault(shard=5, kind="crash")])


def test_seeded_plans_are_replayable_and_in_range():
    for seed in range(16):
        p1 = ChaosPlan.seeded(seed, shards=4, requests=48)
        p2 = ChaosPlan.seeded(seed, shards=4, requests=48)
        assert p1.to_json() == p2.to_json()
        assert len(p1) == 1
        fault = p1.faults[0]
        assert 0 <= fault.shard < 4
        assert 1 <= fault.at_request < 12
