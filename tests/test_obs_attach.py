"""The unified attach API and its deprecated per-class shims."""

from __future__ import annotations

import pytest

from repro.interpose import TraceInterposer, attach, available_tools
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR

from tests.conftest import hello_image

pytestmark = pytest.mark.obs

ALL_TOOLS = (
    "lazypoline", "zpoline", "sud", "seccomp_user", "seccomp_bpf",
    "seccomp_unotify", "ptrace", "preload",
)


def test_registry_lists_every_tool():
    assert set(available_tools()) == set(ALL_TOOLS)


@pytest.mark.parametrize("tool", ALL_TOOLS)
def test_attach_works_for_every_tool(tool):
    machine = Machine()
    process = machine.load(hello_image())
    instance = attach(machine, process, tool)
    assert instance is not None
    assert type(instance).tool_name == tool
    code = machine.run_process(process)
    assert code == 0
    assert process.stdout == b"hello\n"


@pytest.mark.parametrize(
    "tool", ["lazypoline", "zpoline", "sud", "seccomp_user", "ptrace"]
)
def test_attach_with_interposer_traces(tool):
    machine = Machine()
    process = machine.load(hello_image())
    tracer = TraceInterposer()
    attach(machine, process, tool, interposer=tracer)
    machine.run_process(process)
    assert "write" in tracer.names
    assert tracer.count("write") == 1


def test_attach_unknown_tool_raises():
    machine = Machine()
    process = machine.load(hello_image())
    with pytest.raises(ValueError, match="unknown interposition tool"):
        attach(machine, process, "strace")


def test_seccomp_bpf_rejects_interposer():
    machine = Machine()
    process = machine.load(hello_image())
    with pytest.raises(ValueError, match="cannot run an interposer"):
        attach(machine, process, "seccomp_bpf", interposer=TraceInterposer())


def test_seccomp_bpf_denylist_opt():
    machine = Machine()
    process = machine.load(hello_image())
    attach(machine, process, "seccomp_bpf",
           denylist=[NR["write"]], errno_value=13)
    machine.run_process(process)
    assert process.stdout == b""  # write denied with EACCES


def test_seccomp_unotify_sysnos_opt():
    machine = Machine()
    process = machine.load(hello_image())
    tracer = TraceInterposer()
    attach(machine, process, "seccomp_unotify",
           interposer=tracer, sysnos=[NR["write"]])
    machine.run_process(process)
    assert tracer.names == ["write"]  # only the selected syscall notifies
    assert process.stdout == b"hello\n"


def test_register_tool_extension_point():
    from repro.interpose import register_tool

    seen = {}

    def fake_attach(machine, process, interposer=None, **opts):
        seen["opts"] = opts
        return "fake-tool"

    register_tool("faketool", fake_attach)
    try:
        machine = Machine()
        process = machine.load(hello_image())
        assert "faketool" in available_tools()
        assert attach(machine, process, "faketool", depth=3) == "fake-tool"
        assert seen["opts"] == {"depth": 3}
    finally:
        from repro.interpose import registry

        registry._REGISTRY.pop("faketool", None)


# -------------------------------------------------------------- removed shims
def test_attach_replaces_lazypoline_install():
    machine = Machine()
    process = machine.load(hello_image())
    tracer = TraceInterposer()
    tool = attach(machine, process, "lazypoline", interposer=tracer)
    machine.run_process(process)
    assert "write" in tracer.names
    assert tool.rewritten


def test_attach_replaces_zpoline_install():
    machine = Machine()
    process = machine.load(hello_image())
    attach(machine, process, "zpoline")
    assert machine.run_process(process) == 0


def test_attach_replaces_seccomp_bpf_denylist():
    machine = Machine()
    process = machine.load(hello_image())
    attach(machine, process, "seccomp_bpf", denylist=[NR["write"]])
    machine.run_process(process)
    assert process.stdout == b""


def test_attach_does_not_warn():
    import warnings

    machine = Machine()
    process = machine.load(hello_image())
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        attach(machine, process, "lazypoline")
    assert machine.run_process(process) == 0
