"""Property: SMP execution is guest-invisible for every interleaving.

For random core counts, scheduling quanta and seeds, the differential
oracle must find zero divergences between a multi-core run and the 1-core
run of the same guest: exit status, stdout, filesystem effects and the
per-thread syscall name sequence are all part of program semantics and
must not depend on how the simulator spreads work over cores.

Schedule perturbation (random per-slice quanta and runqueue order) rides
on :class:`ExplorerPolicy`, so each example also varies *when* preemptions
land — multi-core wrongness that only shows under odd slice boundaries
(stale per-core translation caches, selector state lost in migration)
gets hunted, not just the happy path.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.faults.corpus import CORPUS  # noqa: E402
from repro.faults.explorer import ExplorerPolicy  # noqa: E402
from repro.faults.oracle import differences, run_guest  # noqa: E402

PROGRAMS = ("syscall_loop", "fork_wait", "clone_shared", "sig_pingpong")


@pytest.mark.smp
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    name=st.sampled_from(PROGRAMS),
    cores=st.integers(min_value=2, max_value=4),
    smp_seed=st.integers(min_value=0, max_value=2**31),
    schedule_seed=st.integers(min_value=0, max_value=2**31),
    quantum=st.integers(min_value=8, max_value=96),
)
def test_smp_runs_match_single_core(name, cores, smp_seed, schedule_seed,
                                    quantum):
    prog = CORPUS[name]

    def policy():
        return ExplorerPolicy(schedule_seed, quantum=quantum, min_quantum=4)

    base = run_guest(
        prog.build, "lazypoline", setup=prog.setup, policy=policy(),
        max_instructions=prog.max_instructions,
    )
    smp = run_guest(
        prog.build, "lazypoline", setup=prog.setup, policy=policy(),
        cores=cores, smp_seed=smp_seed,
        max_instructions=prog.max_instructions,
    )
    assert not differences(base, smp), (name, cores, smp_seed)


@pytest.mark.smp
@settings(max_examples=10, deadline=None)
@given(
    cores=st.integers(min_value=2, max_value=4),
    smp_seed=st.integers(min_value=0, max_value=2**31),
)
def test_plain_runs_match_single_core(cores, smp_seed):
    """No tool attached: the bare kernel is SMP-invariant too."""
    prog = CORPUS["clone_shared"]
    base = run_guest(prog.build)
    smp = run_guest(prog.build, cores=cores, smp_seed=smp_seed)
    assert not differences(base, smp)
