"""CPU interpreter tests (bare metal: no kernel)."""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.arch.registers import XComponent
from repro.cpu.core import BareTask, CPU, NullEnvironment, XSAVE_AREA_SIZE
from repro.errors import BreakpointTrap, InvalidOpcode, PageFault
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, Perm

CODE = 0x1000
STACK = 0x8000


def make_machine(build, *, stack=True):
    """Assemble `build(asm)` at CODE and return (cpu, task, env)."""
    mem = AddressSpace()
    a = Assembler(base=CODE)
    build(a)
    code = a.assemble()
    size = (len(code) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    mem.map(CODE, size, Perm.RX)
    mem.write(CODE, code, check=None)
    if stack:
        mem.map(STACK, PAGE_SIZE, Perm.RW)
    env = NullEnvironment()
    cpu = CPU(env)
    task = BareTask(mem)
    task.regs.rip = CODE
    task.regs.write_name("rsp", STACK + PAGE_SIZE)
    return cpu, task, env


def run_until_hlt(cpu, task, env, max_steps=10_000):
    for _ in range(max_steps):
        if env.halted:
            return
        cpu.step(task)
    raise AssertionError("program did not halt")


def test_mov_and_arithmetic():
    def build(a):
        a.mov_imm("rax", 10)
        a.mov_imm("rbx", 32)
        a.add("rax", "rbx")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == 42


def test_sub_wraps_at_64_bits():
    def build(a):
        a.mov_imm("rax", 0)
        a.mov_imm("rbx", 1)
        a.sub("rax", "rbx")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == (1 << 64) - 1


def test_imul_signed():
    def build(a):
        a.mov_imm("rax", (1 << 64) - 3)  # -3
        a.mov_imm("rbx", 7)
        a.imul("rax", "rbx")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == ((1 << 64) - 21)


def test_loop_with_dec_jnz():
    def build(a):
        a.mov_imm("rcx", 0)
        a.mov_imm("rbx", 5)
        a.label("loop")
        a.addi("rcx", 3)
        a.dec("rbx")
        a.jnz("loop")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rcx") == 15


def test_signed_compare_branches():
    def build(a):
        a.mov_imm("rax", (1 << 64) - 5)  # -5
        a.mov_imm("rbx", 3)
        a.cmp("rax", "rbx")
        a.jl("less")
        a.mov_imm("rdx", 0)
        a.hlt()
        a.label("less")
        a.mov_imm("rdx", 1)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rdx") == 1


@pytest.mark.parametrize(
    "a_val,b_val,jcc,taken",
    [
        (5, 5, "jz", True),
        (5, 6, "jz", False),
        (5, 6, "jnz", True),
        (7, 3, "jg", True),
        (3, 7, "jg", False),
        (3, 3, "jge", True),
        (3, 3, "jle", True),
        (2, 3, "jle", True),
    ],
)
def test_conditional_jumps(a_val, b_val, jcc, taken):
    def build(asm):
        asm.mov_imm("rax", a_val)
        asm.mov_imm("rbx", b_val)
        asm.cmp("rax", "rbx")
        getattr(asm, jcc)("yes")
        asm.mov_imm("rdx", 0)
        asm.hlt()
        asm.label("yes")
        asm.mov_imm("rdx", 1)
        asm.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rdx") == (1 if taken else 0)


def test_push_pop_call_ret():
    def build(a):
        a.mov_imm("rax", 1)
        a.call("func")
        a.hlt()
        a.label("func")
        a.push("rax")
        a.mov_imm("rax", 99)
        a.pop("rax")
        a.addi("rax", 10)
        a.ret()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == 11


def test_call_reg_pushes_return_address():
    def build(a):
        a.mov_imm("rax", "func")
        a.call_reg("rax")
        a.hlt()
        a.label("func")
        a.load("rbx", "rsp", 0)  # return address
        a.ret()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    # The pushed return address is the hlt; rip has advanced one byte past
    # it by the time the halt is observed.
    assert task.regs.read_name("rbx") == task.regs.rip - 1


def test_load_store_memory():
    def build(a):
        a.mov_imm("rbx", STACK)
        a.mov_imm("rax", 0xDEADBEEF)
        a.store("rbx", 16, "rax")
        a.load("rcx", "rbx", 16)
        a.load8("rdx", "rbx", 16)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rcx") == 0xDEADBEEF
    assert task.regs.read_name("rdx") == 0xEF


def test_syscall_reports_to_environment():
    def build(a):
        a.mov_imm("rax", 39)
        a.mov_imm("rdi", 123)
        a.syscall()
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert env.syscalls[0][0] == 39
    assert env.syscalls[0][1][0] == 123


def test_invalid_opcode_raises():
    def build(a):
        a.ud2()

    cpu, task, env = make_machine(build)
    with pytest.raises(InvalidOpcode):
        cpu.step(task)


def test_out_of_range_register_field_is_invalid_opcode():
    """INVARIANT: only 16 registers exist; a register-field byte >= 16 is
    an undefined encoding and must raise #UD at decode time, never produce
    an Instruction whose operands index past the register file.  (Found by
    fuzzing: ``48 3C 10`` once decoded to RDPKRU with operand 16.)
    """
    from repro.arch.decode import decode_one

    with pytest.raises(InvalidOpcode):
        decode_one(b"\x48\x3c\x10")  # rdpkru r16
    with pytest.raises(InvalidOpcode):
        decode_one(b"\x48\x01\x10\x03")  # mov r16, rbx
    # a shift count >= 16 is NOT a register field and stays valid
    from repro.arch.encode import Assembler
    from repro.arch.isa import Mnemonic

    a = Assembler()
    a.shl("rax", 32)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.SHL
    assert insn.operands == (0, 32)


def test_int3_raises_breakpoint():
    def build(a):
        a.int3()

    cpu, task, env = make_machine(build)
    with pytest.raises(BreakpointTrap):
        cpu.step(task)


def test_exec_fault_on_nonexec_page():
    mem = AddressSpace()
    mem.map(CODE, PAGE_SIZE, Perm.RW)
    cpu = CPU(NullEnvironment())
    task = BareTask(mem)
    task.regs.rip = CODE
    with pytest.raises(PageFault):
        cpu.step(task)


def test_xmm_moves_and_punpcklqdq():
    def build(a):
        a.mov_imm("rax", 0x1111)
        a.movq_xg("xmm0", "rax")
        a.punpcklqdq("xmm0", "xmm0")  # duplicate low qword into high
        a.movq_gx("rbx", "xmm0")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rbx") == 0x1111
    assert task.regs.read_xmm(0) == 0x1111 | (0x1111 << 64)


def test_movups_roundtrip_through_memory():
    def build(a):
        a.mov_imm("rbx", STACK)
        a.mov_imm("rax", 0xCAFEBABE)
        a.movq_xg("xmm3", "rax")
        a.punpcklqdq("xmm3", "xmm3")
        a.movups_store("rbx", 0, "xmm3")
        a.movups_load("xmm7", "rbx", 0)
        a.movq_gx("rcx", "xmm7")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rcx") == 0xCAFEBABE
    assert task.regs.read_xmm(7) == task.regs.read_xmm(3)


def test_xorps_zeroing_idiom():
    def build(a):
        a.mov_imm("rax", 7)
        a.movq_xg("xmm1", "rax")
        a.xorps("xmm1", "xmm1")
        a.movq_gx("rbx", "xmm1")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rbx") == 0


def test_x87_stack():
    def build(a):
        a.fld1()
        a.fld1()
        a.faddp()  # 1.0 + 1.0
        a.mov_imm("rbx", STACK)
        a.fstp_mem("rbx", 0)
        a.load("rax", "rbx", 0)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    import struct

    assert struct.unpack("<d", task.regs.read_name("rax").to_bytes(8, "little"))[0] == 2.0


def test_xsave_xrstor_roundtrip():
    def build(a):
        a.mov_imm("rax", 0x42)
        a.movq_xg("xmm5", "rax")
        a.fld1()
        a.mov_imm("rbx", STACK)
        a.xsave("rbx", 0)
        # clobber
        a.xorps("xmm5", "xmm5")
        a.fld1()
        a.faddp()
        a.xrstor("rbx", 0)
        a.movq_gx("rcx", "xmm5")
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rcx") == 0x42


def test_xsave_respects_component_mask():
    def build(a):
        a.mov_imm("rax", 7)
        a.movq_xg("xmm2", "rax")
        a.mov_imm("rbx", STACK)
        a.xsave("rbx", 0)
        a.xorps("xmm2", "xmm2")
        a.xrstor("rbx", 0)
        a.movq_gx("rcx", "xmm2")
        a.hlt()

    cpu, task, env = make_machine(build)
    task.xsave_mask = XComponent.X87  # SSE not saved
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rcx") == 0  # xmm2 was NOT restored


def test_gs_relative_accesses():
    def build(a):
        a.mov_imm("rax", STACK)
        a.wrgsbase("rax")
        a.rdgsbase("rbx")
        a.mov_imm("rcx", 0x5A)
        a.gsstore8(3, "rcx")
        a.gsload8("rdx", 3)
        a.mov_imm("rcx", 0x1234567890)
        a.gsstore(8, "rcx")
        a.gsload("rsi", 8)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rbx") == STACK
    assert task.regs.read_name("rdx") == 0x5A
    assert task.regs.read_name("rsi") == 0x1234567890


def test_gsjmp_and_gscopy8_clobber_nothing():
    def build(a):
        a.mov_imm("rax", STACK)
        a.wrgsbase("rax")
        a.mov_imm("rcx", 1)
        a.gsstore8(16, "rcx")  # source byte = 1
        a.mov_imm("rcx", "target")
        a.gsstore(24, "rcx")  # jump slot
        a.mov_imm("rax", 77)
        a.mov_imm("rcx", 88)
        a.gscopy8(17, 16)
        a.gsjmp(24)
        a.hlt()  # skipped
        a.label("target")
        a.gsload8("rbx", 17)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rbx") == 1  # byte was copied
    assert task.regs.read_name("rax") == 77  # nothing clobbered
    assert task.regs.read_name("rcx") == 88


def test_hcall_dispatches_to_environment():
    def build(a):
        a.hcall(5)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert env.hcalls == [5]


def test_shift_operations():
    def build(a):
        a.mov_imm("rax", 1)
        a.shl("rax", 12)
        a.mov_imm("rbx", 0x100)
        a.shr("rbx", 4)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == 0x1000
    assert task.regs.read_name("rbx") == 0x10


def test_lea():
    def build(a):
        a.mov_imm("rbx", 0x1000)
        a.lea("rax", "rbx", 0x234)
        a.hlt()

    cpu, task, env = make_machine(build)
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rax") == 0x1234


def test_cycle_charging_is_deterministic():
    def build(a):
        a.mov_imm("rbx", 10)
        a.label("loop")
        a.dec("rbx")
        a.jnz("loop")
        a.hlt()

    cpu1, task1, env1 = make_machine(build)
    run_until_hlt(cpu1, task1, env1)
    cpu2, task2, env2 = make_machine(build)
    run_until_hlt(cpu2, task2, env2)
    assert env1.cycles == env2.cycles > 0
