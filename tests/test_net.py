"""Sockets, epoll, and the wrk client model."""

from __future__ import annotations

import pytest

from repro.kernel.machine import Machine
from repro.kernel.net import Connection, EpollDesc, ListenSocket, SocketDesc
from repro.kernel.fs import EPOLLIN, EPOLLOUT
from repro.kernel.syscalls.table import NR
from repro.workloads.webserver import NGINX, LIGHTTPD, ServerWorkload
from repro.workloads.wrk import HEADER_SIZE, WrkClient

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


# -------------------------------------------------------------- unit level
def test_connection_pair_delivery():
    conn = Connection()
    received = []
    conn.client.on_data = received.append
    conn.client.send(b"request")
    assert conn.server.inbuf == b"request"
    conn.server.send(b"response")
    assert received == [b"response"]


def test_endpoint_close_propagates():
    conn = Connection()
    closed = []
    conn.client.on_close = lambda: closed.append(True)
    conn.server.close()
    assert closed == [True]
    assert conn.client.send(b"x") < 0  # EPIPE


def test_socketdesc_read_eof_after_peer_close():
    conn = Connection()
    desc = SocketDesc(conn.server)
    conn.client.send(b"ab")
    conn.client.close()
    assert desc.read(None, 10) == b"ab"
    assert desc.read(None, 10) == b""  # orderly EOF


def test_epoll_poll_masks():
    conn = Connection()
    desc = SocketDesc(conn.server)
    assert desc.poll() & EPOLLOUT
    assert not desc.poll() & EPOLLIN
    conn.client.send(b"x")
    assert desc.poll() & EPOLLIN


def test_epoll_ready_events_reports_interested_fds():
    from repro.kernel.task import FdTable

    conn = Connection()
    desc = SocketDesc(conn.server)
    listener = ListenSocket()
    fdt = FdTable()
    sfd = fdt.install(desc)
    lfd = fdt.install(listener)
    ep = EpollDesc()
    ep.interest[sfd] = (EPOLLIN, 0xAA)
    ep.interest[lfd] = (EPOLLIN, 0xBB)
    assert ep.ready_events(fdt) == []
    conn.client.send(b"x")
    assert ep.ready_events(fdt) == [(sfd, EPOLLIN, 0xAA)]
    listener.backlog.append(Connection())
    assert len(ep.ready_events(fdt)) == 2


# ----------------------------------------------------------- guest programs
def test_guest_echo_server(machine):
    """A tiny accept/read/write guest server against a host client."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r15", "rax")
    a.mov_imm("rdi", 2)
    a.mov_imm("rsi", 1)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["socket"])
    a.syscall()
    a.mov("rbx", "rax")
    a.mov_imm("rcx", 0x1F)  # port 8080 = 0x1F90
    a.store8("r15", 2, "rcx")
    a.mov_imm("rcx", 0x90)
    a.store8("r15", 3, "rcx")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r15")
    a.mov_imm("rdx", 16)
    a.mov_imm("rax", NR["bind"])
    a.syscall()
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 16)
    a.mov_imm("rax", NR["listen"])
    a.syscall()
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["accept"])
    a.syscall()
    a.mov("r13", "rax")
    a.mov("rdi", "r13")
    a.lea("rsi", "r15", 64)
    a.mov_imm("rdx", 128)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    a.mov("rdx", "rax")  # echo length
    a.mov("rdi", "r13")
    a.lea("rsi", "r15", 64)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    proc = machine.load(finish(a))

    received = []
    machine.run(
        until=lambda: 8080 in machine.kernel.net.listeners
        and machine.kernel.net.listeners[8080].listening,
        max_instructions=100_000,
    )
    conn = machine.kernel.net.connect(8080, on_data=received.append)
    conn.client.send(b"ping!")
    code = machine.run_process(proc)
    assert code == 0
    assert received == [b"ping!"]


def test_guest_connect_to_guest_listener(machine):
    """Loopback between two guest processes (server + client)."""
    s = asm()
    s.label("_start")
    emit_syscall(s, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    s.mov("r15", "rax")
    s.mov_imm("rdi", 2)
    s.mov_imm("rsi", 1)
    s.mov_imm("rdx", 0)
    s.mov_imm("rax", NR["socket"])
    s.syscall()
    s.mov("rbx", "rax")
    s.mov_imm("rcx", 0x23)  # port 9000 = 0x2328
    s.store8("r15", 2, "rcx")
    s.mov_imm("rcx", 0x28)
    s.store8("r15", 3, "rcx")
    s.mov("rdi", "rbx")
    s.mov("rsi", "r15")
    s.mov_imm("rdx", 16)
    s.mov_imm("rax", NR["bind"])
    s.syscall()
    s.mov("rdi", "rbx")
    s.mov_imm("rsi", 16)
    s.mov_imm("rax", NR["listen"])
    s.syscall()
    s.mov("rdi", "rbx")
    s.mov_imm("rsi", 0)
    s.mov_imm("rdx", 0)
    s.mov_imm("rax", NR["accept"])
    s.syscall()
    s.mov("r13", "rax")
    s.mov("rdi", "r13")
    s.lea("rsi", "r15", 64)
    s.mov_imm("rdx", 16)
    s.mov_imm("rax", NR["read"])
    s.syscall()
    # server exits with the first received byte as its code
    s.load8("rdi", "r15", 64)
    s.mov_imm("rax", NR["exit_group"])
    s.syscall()
    server = machine.load(finish(s, name="srv"))

    c = asm()
    c.label("_start")
    emit_syscall(c, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    c.mov("r15", "rax")
    c.mov_imm("rdi", 2)
    c.mov_imm("rsi", 1)
    c.mov_imm("rdx", 0)
    c.mov_imm("rax", NR["socket"])
    c.syscall()
    c.mov("rbx", "rax")
    c.mov_imm("rcx", 0x23)
    c.store8("r15", 2, "rcx")
    c.mov_imm("rcx", 0x28)
    c.store8("r15", 3, "rcx")
    c.mov("rdi", "rbx")
    c.mov("rsi", "r15")
    c.mov_imm("rdx", 16)
    c.mov_imm("rax", NR["connect"])
    c.syscall()
    c.mov_imm("rcx", 55)
    c.store8("r15", 64, "rcx")
    c.mov("rdi", "rbx")
    c.lea("rsi", "r15", 64)
    c.mov_imm("rdx", 1)
    c.mov_imm("rax", NR["write"])
    c.syscall()
    emit_exit(c, 0)
    machine.load(finish(c, name="cli"))

    machine.run(until=lambda: not server.alive, max_instructions=2_000_000)
    assert server.exit_code == 55


# ------------------------------------------------------------- wrk + server
@pytest.mark.parametrize("spec", [NGINX, LIGHTTPD], ids=lambda s: s.name)
def test_server_serves_correct_bytes(spec):
    machine = Machine()
    workload = ServerWorkload(machine, spec, file_size=1000)
    workload.run_until_listening()
    client = WrkClient(machine.kernel, 8080, connections=1, response_size=1000)
    client.start()
    machine.run(
        until=lambda: client.stats.completed >= 3, max_instructions=10_000_000
    )
    assert client.stats.errors == 0
    assert client.stats.bytes_received == 3 * (HEADER_SIZE + 1000)


def test_wrk_throughput_positive_and_deterministic():
    def measure():
        machine = Machine()
        workload = ServerWorkload(machine, NGINX, file_size=4096)
        return workload.benchmark(requests=50, warmup=5)

    first = measure()
    second = measure()
    assert first > 0
    assert first == pytest.approx(second, rel=1e-9)


def test_throughput_decreases_with_file_size():
    def rate(size):
        machine = Machine()
        workload = ServerWorkload(machine, NGINX, file_size=size)
        return workload.benchmark(requests=60, warmup=5)

    assert rate(1024) > rate(65536) > rate(262144)


def test_multiple_connections_supported():
    machine = Machine()
    workload = ServerWorkload(machine, LIGHTTPD, file_size=512)
    workload.run_until_listening()
    client = WrkClient(machine.kernel, 8080, connections=6, response_size=512)
    client.start()
    machine.run(
        until=lambda: client.stats.completed >= 30,
        max_instructions=20_000_000,
    )
    assert client.stats.completed >= 30
    assert client.stats.errors == 0
