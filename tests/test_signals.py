"""Signal delivery, handlers, masks, nested signals, sigreturn."""

from __future__ import annotations

from repro.kernel.signals import (
    FRAME_SIZE,
    SIGSEGV,
    SIGTERM,
    SIGUSR1,
    SIGUSR2,
)
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def _register(a, sig, act_label):
    a.mov_imm("rdi", sig)
    a.mov_imm("rsi", act_label)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()


def _raise_self(a, sig):
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", sig)
    a.mov_imm("rax", NR["kill"])
    a.syscall()


def test_default_sigterm_kills(machine):
    a = asm()
    a.label("_start")
    _raise_self(a, SIGTERM)
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    assert proc.term_signal == SIGTERM


def test_handler_runs_and_main_continues(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    _raise_self(a, SIGUSR1)
    emit_syscall(a, "write", 1, "m_main", 5)
    emit_exit(a, 0)
    a.label("handler")
    emit_syscall(a, "write", 1, "m_hand", 5)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m_main")
    a.db(b"main\n")
    a.label("m_hand")
    a.db(b"hand\n")
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.stdout == b"hand\nmain\n"


def test_handler_preserves_interrupted_registers(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    a.mov_imm("rbx", 0x1234)
    a.mov_imm("r15", 0x5678)
    _raise_self(a, SIGUSR1)
    # after the handler (which clobbers everything) rbx/r15 must be intact
    a.cmpi("rbx", 0x1234)
    a.jnz("bad")
    a.cmpi("r15", 0x5678)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("handler")
    a.mov_imm("rbx", 0)
    a.mov_imm("r15", 0)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_handler_preserves_xmm_state(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    a.mov_imm("rax", 0xABCD)
    a.movq_xg("xmm6", "rax")
    _raise_self(a, SIGUSR1)
    a.movq_gx("rbx", "xmm6")
    a.cmpi("rbx", 0xABCD)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("handler")
    a.xorps("xmm6", "xmm6")  # clobber: frame xstate must restore it
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_signal_blocked_by_mask_stays_pending(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    # block SIGUSR1
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rcx", 1 << SIGUSR1)
    a.store("r12", 0, "rcx")
    a.mov_imm("rdi", 0)  # SIG_BLOCK
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["rt_sigprocmask"])
    a.syscall()
    _raise_self(a, SIGUSR1)
    emit_syscall(a, "write", 1, "m_main", 5)  # runs before the handler
    # unblock: handler fires now
    a.mov_imm("rdi", 1)  # SIG_UNBLOCK
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["rt_sigprocmask"])
    a.syscall()
    a.nop()  # delivery point
    emit_exit(a, 0)
    a.label("handler")
    emit_syscall(a, "write", 1, "m_hand", 5)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m_main")
    a.db(b"main\n")
    a.label("m_hand")
    a.db(b"hand\n")
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.stdout == b"main\nhand\n"


def test_nested_different_signals(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act1")
    _register(a, SIGUSR2, "act2")
    _raise_self(a, SIGUSR1)
    emit_syscall(a, "write", 1, "m0", 2)
    emit_exit(a, 0)
    a.label("h1")
    # inside handler 1, raise USR2: nested delivery
    _raise_self(a, SIGUSR2)
    emit_syscall(a, "write", 1, "m1", 2)
    a.ret()
    a.label("h2")
    emit_syscall(a, "write", 1, "m2", 2)
    a.ret()
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("act2")
    a.dq("h2")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m0")
    a.db(b"0\n")
    a.label("m1")
    a.db(b"1\n")
    a.label("m2")
    a.db(b"2\n")
    proc, code = run_program(machine, finish(a))
    assert code == 0
    # USR2 delivered inside handler 1 (at its next syscall boundary) or
    # right after; both handlers must complete before main's write.
    assert proc.stdout.endswith(b"0\n")
    assert b"1\n" in proc.stdout and b"2\n" in proc.stdout


def test_same_signal_masked_during_handler(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    _raise_self(a, SIGUSR1)
    emit_exit(a, 0)
    a.label("handler")
    # raising SIGUSR1 again inside its own handler must not recurse now;
    # it is delivered after sigreturn unblocks it.
    a.load("rcx", "rsp", -2048)  # dummy
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r14", "rax")
    a.load("rcx", "r14", 0)  # counter
    a.cmpi("rcx", 0)
    a.jnz("second_time")
    a.mov_imm("rcx", 1)
    a.store("r14", 0, "rcx")
    a.ret()
    a.label("second_time")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_sigsegv_handler_can_fix_and_resume(machine):
    """The handler mmaps the faulting page; the faulting load re-executes."""
    a = asm()
    a.label("_start")
    _register(a, SIGSEGV, "act")
    a.mov_imm("rbx", 0x9000_0000)
    a.load("rcx", "rbx", 0)  # faults; handler maps the page; re-runs
    a.cmpi("rcx", 0)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("handler")
    emit_syscall(a, "mmap", 0x9000_0000, 4096, 3, 0x32, (1 << 64) - 1, 0)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_frame_size_sane():
    assert FRAME_SIZE % 16 == 0
    assert FRAME_SIZE >= 1024  # must hold the full xstate
