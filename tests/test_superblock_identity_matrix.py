"""Cycle-identity matrix: tiering on vs off across guests, tools, workloads.

The superblock tier's contract is stronger than behavioural equivalence:
simulated *cycles*, retired-instruction totals and the full observability
event stream must be bit-identical with tiering on and off — the tier may
only change host wall-clock.  This matrix pins that contract across the
fault-corpus guests, the interposition tools whose own machinery (SIGSYS
rewrites, trampolines, ptrace stops) is the adversary, and the webserver
workload, comparing every obs event except the tier's own ``block_*``
telemetry (which legitimately exists only when tiering is on).
"""

from __future__ import annotations

import pytest

from repro.faults.corpus import CORPUS
from repro.faults.oracle import differences, run_guest
from repro.interpose import attach
from repro.kernel.machine import Machine
from repro.obs.events import BLOCK_COMPILE, BLOCK_INVALIDATE
from repro.obs.tracer import Tracer
from repro.workloads.webserver import SERVERS, ServerWorkload

pytestmark = pytest.mark.superblock

#: Event kinds emitted only by the tier itself; everything else must match.
TIER_KINDS = {BLOCK_COMPILE, BLOCK_INVALIDATE}


def _assert_lockstep(reports):
    diffs = differences(reports[False], reports[True], compare_cycles=True)
    assert not diffs, diffs


# ----------------------------------------------------- corpus x tool matrix
@pytest.mark.parametrize("guest", sorted(CORPUS))
@pytest.mark.parametrize("tool", [None, "lazypoline", "zpoline", "ptrace"])
def test_corpus_tool_cycle_identity(guest, tool):
    reports = {
        sb: run_guest(
            CORPUS[guest].build,
            tool,
            machine_opts={"superblocks": sb},
        )
        for sb in (False, True)
    }
    _assert_lockstep(reports)


# ----------------------------------------------------- obs stream identity
def _filtered_stream(tracer: Tracer) -> list[tuple]:
    """(ts, kind, tid, core, data) for every non-tier event — ``seq`` is
    excluded because interleaved block_* events legitimately renumber."""
    return [
        (e.ts, e.kind, e.tid, e.core, tuple(sorted(e.data.items())))
        for e in tracer.events
        if e.kind not in TIER_KINDS
    ]


@pytest.mark.parametrize("tool", ["lazypoline", "zpoline", "ptrace"])
def test_webserver_obs_stream_identity(tool):
    """The nginx-model server under each tool: same requests/second, same
    clock, and the same machine-wide event stream either way."""
    out = {}
    for sb in (False, True):
        tracer = Tracer()
        machine = Machine(superblocks=sb, tracer=tracer)
        workload = ServerWorkload(machine, SERVERS["nginx"], file_size=2048)
        attach(machine, workload.process, tool)
        rps = workload.benchmark(requests=60, warmup=5)
        out[sb] = (
            rps,
            machine.clock,
            machine.scheduler.total_instructions,
            _filtered_stream(tracer),
        )
    assert out[False] == out[True]


def test_webserver_tiering_actually_engages():
    """The identity above must not hold vacuously: the server's hot paths
    really do tier up (and emit block_compile telemetry)."""
    tracer = Tracer()
    machine = Machine(tracer=tracer)
    workload = ServerWorkload(machine, SERVERS["nginx"], file_size=2048)
    workload.benchmark(requests=60, warmup=5)
    stats = machine.superblock_stats()
    assert stats["compiled"] >= 1
    assert stats["block_runs"] >= 1
    assert tracer.block_compiles == stats["compiled"]
    assert any(e.kind == BLOCK_COMPILE for e in tracer.events)


def test_fault_corpus_seed_replay_cycle_identity(
    fault_seed_corpus, monkeypatch
):
    """Recorded regression seeds: each (scenario, seed) replays to the
    same digests whether or not the interpreter is allowed to tier up.

    Scenarios build their machines internally, so tiering is suppressed
    for the comparison run by pushing the hotness threshold out of reach —
    behaviourally identical to ``superblocks=False``.
    """
    import repro.kernel.scheduler as sched
    from repro.faults.scenarios import SCENARIOS

    ran = 0
    for scenario, seeds in sorted(fault_seed_corpus.items()):
        if scenario not in SCENARIOS:
            continue  # metadata keys like "_comment"
        for seed in seeds[:2]:
            tiered = SCENARIOS[scenario](seed)
            with monkeypatch.context() as mp:
                mp.setattr(sched, "_HOT", 10**9)
                cold = SCENARIOS[scenario](seed)
            assert tiered.ok and cold.ok, (scenario, seed)
            assert tiered.digests == cold.digests, (scenario, seed)
            assert tiered.covered == cold.covered, (scenario, seed)
            ran += 1
    assert ran >= 8
