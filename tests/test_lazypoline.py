"""lazypoline: lazy rewriting, signals, spawn handling, exhaustiveness."""

from __future__ import annotations

import pytest

from repro.arch.isa import CALL_RAX_BYTES
from repro.kernel.machine import Machine
from repro.arch.registers import XComponent
from repro.interpose.api import DenyListInterposer, TraceInterposer
from repro.interpose.lazypoline import Lazypoline, LazypolineConfig, gsrel
from repro.interpose.sud_tool import SudTool
from repro.interpose.zpoline import Zpoline
from repro.kernel import errno
from repro.kernel.signals import SIGUSR1
from repro.kernel.sud import SELECTOR_BLOCK
from repro.kernel.syscalls.table import NR
from repro.workloads import tcc

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


def test_basic_interposition(machine):
    tr = TraceInterposer()
    proc = machine.load(hello_image(b"lp\n", exit_code=6))
    Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 6
    assert proc.stdout == b"lp\n"
    assert tr.names == ["write", "exit_group"]


def test_lazy_rewriting_happens_on_first_use(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 4)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    img = finish(a)
    proc = machine.load(img)
    tool = Lazypoline._install(machine, proc, TraceInterposer())
    # nothing rewritten up front: lazypoline does not scan
    assert not tool.rewritten
    machine.run_process(proc)
    # one slow-path hit per distinct site: the loop's getpid traps once,
    # the exit_group site once
    sites = sorted(tool.rewritten)
    assert len(sites) == 2
    assert tool.slowpath_hits == 2
    # every invocation reached the generic handler: 4 getpids + 1 exit
    assert tool.fastpath_hits == 5
    for site in sites:
        assert proc.task.mem.read(site, 2, check=None) == CALL_RAX_BYTES


def test_selector_is_block_during_app_code(machine):
    proc = machine.load(hello_image())
    tool = Lazypoline._install(machine, proc, TraceInterposer())
    task = proc.task
    assert gsrel.read_selector(task.mem, task.regs.gs_base) == SELECTOR_BLOCK
    machine.run_process(proc)
    del tool


def test_no_allowlisted_range(machine):
    """Selector-only SUD: the armed dispatch range excludes nothing."""
    proc = machine.load(hello_image())
    Lazypoline._install(machine, proc)
    assert proc.task.sud is not None
    assert proc.task.sud.allow_len == 0


def test_deep_argument_inspection(machine):
    """Expressiveness: the interposer reads the written buffer's content."""
    seen = []

    def peek(ctx):
        if ctx.name == "write":
            seen.append(ctx.read_mem(ctx.args[1], ctx.args[2]))
        return ctx.do_syscall()

    proc = machine.load(hello_image(b"secret\n"))
    Lazypoline._install(machine, proc, peek)
    machine.run_process(proc)
    assert seen == [b"secret\n"]


def test_denylist_sandbox(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o700)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("p")
    a.db(b"/forbidden\x00")
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc, DenyListInterposer({NR["mkdir"]: errno.EPERM}))
    code = machine.run_process(proc)
    assert code == errno.EPERM
    assert not machine.fs.exists("/forbidden")


def test_xstate_preserved_across_interposed_syscall(machine):
    """A clobbering interposer must not leak into app xmm state when
    xstate preservation is on (the default)."""

    def clobber(ctx):
        ctx.task.regs.write_xmm(0, 0)  # hostile interposer
        ctx.task.regs.x87_push(0xBAD)
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    a.mov_imm("rax", 0x77)
    a.movq_xg("xmm0", "rax")
    emit_syscall(a, "getpid")
    a.movq_gx("rbx", "xmm0")
    a.cmpi("rbx", 0x77)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc, clobber)
    assert machine.run_process(proc) == 0


def test_xstate_not_preserved_when_disabled(machine):
    def clobber(ctx):
        ctx.task.regs.write_xmm(0, 0)
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    a.mov_imm("rax", 0x77)
    a.movq_xg("xmm0", "rax")
    emit_syscall(a, "getpid")
    a.movq_gx("rbx", "xmm0")
    a.cmpi("rbx", 0x77)
    a.jnz("clobbered")
    emit_exit(a, 1)
    a.label("clobbered")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    config = LazypolineConfig(preserve_xstate=XComponent.none())
    Lazypoline._install(machine, proc, clobber, config)
    assert machine.run_process(proc) == 0  # clobber leaked: xstate off


def test_gprs_always_preserved(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 0x1111)
    a.mov_imm("r12", 0x2222)
    a.mov_imm("rdi", 0)
    emit_syscall(a, "getpid")
    a.cmpi("rbx", 0x1111)
    a.jnz("bad")
    a.cmpi("r12", 0x2222)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc)
    assert machine.run_process(proc) == 0


def _signal_program():
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    emit_syscall(a, "write", 1, "m_main", 5)
    emit_exit(a, 0)
    a.label("handler")
    emit_syscall(a, "write", 1, "m_hand", 5)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m_main")
    a.db(b"main\n")
    a.label("m_hand")
    a.db(b"hand\n")
    return finish(a)


def test_signal_wrapping_end_to_end(machine):
    proc = machine.load(_signal_program())
    tr = TraceInterposer()
    tool = Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"hand\nmain\n"
    # Handler syscalls are interposed (Fig. 3 ②) and so is rt_sigreturn.
    assert tr.count("write") == 2
    assert "rt_sigreturn" in tr.names
    # The kernel-registered handler is the wrapper, not the app handler.
    action = proc.task.sighand.get(SIGUSR1)
    assert action.handler == tool.blobs.wrapper_handler
    assert SIGUSR1 in tool.app_handlers


def test_sigreturn_stack_balanced_after_signal(machine):
    proc = machine.load(_signal_program())
    Lazypoline._install(machine, proc)
    machine.run_process(proc)
    task = proc.task
    gs = task.regs.gs_base
    sp = task.mem.read_u64(gs + gsrel.GS_SIGRET_SP, check=None)
    assert sp == gs + gsrel.GS_SIGRET_STACK  # empty again


def test_xstate_stack_balanced_after_run(machine):
    proc = machine.load(_signal_program())
    Lazypoline._install(machine, proc)
    machine.run_process(proc)
    task = proc.task
    # Exactly one entry remains: the in-flight exit_group invocation never
    # returns through the stub epilogue.  Everything else balanced.
    assert gsrel.xstack_depth(task.mem, task.regs.gs_base) == 1


def test_sigaction_oldact_virtualised(machine):
    """Applications read back their own handler, not the wrapper."""
    a = asm()
    a.label("_start")
    # register
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    # query: rt_sigaction(SIGUSR1, NULL, oldact)
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", 0)
    a.mov("rdx", "r12")
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.load("rcx", "r12", 0)  # oldact.handler
    a.mov_imm("rbx", "handler")
    a.cmp("rcx", "rbx")
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("handler")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc)
    assert machine.run_process(proc) == 0


def test_fork_child_rearms_sud(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    a.label("child_site")
    emit_syscall(a, "getpid")  # a site only the child executes
    emit_exit(a, 2)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    tool = Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    child = [t for t in machine.kernel.tasks.values() if t.parent is proc.task][0]
    assert child.exit_code == 2
    # The child's SUD was re-enabled (the kernel clears it on fork).
    assert child.sud is not None
    # The child-only getpid was trapped and interposed.
    assert "getpid" in tr.names
    assert tool.slowpath_hits >= 3


def test_thread_gets_private_gs_region(machine):
    from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS

    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    a.label("spin")
    a.load("rcx", "r12", 0)
    a.cmpi("rcx", 1)
    a.jnz("spin")
    emit_exit(a, 0)
    a.label("child")
    emit_syscall(a, "gettid")  # interposed from the thread
    a.mov_imm("rcx", 1)
    a.store("r12", 0, "rcx")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    threads = proc.threads()
    assert len(threads) == 2
    main, child = threads[0], threads[1]
    assert child.regs.gs_base != main.regs.gs_base  # private selector
    assert child.sud is not None
    assert child.sud.selector_addr == child.regs.gs_base + gsrel.GS_SELECTOR
    assert "gettid" in tr.names


def test_execve_reinstall(machine):
    t = asm()
    t.label("_start")
    emit_syscall(t, "getpid")
    emit_exit(t, 44)
    machine.register_binary("/bin/next", finish(t, name="next"))

    a = asm()
    a.label("_start")
    emit_syscall(a, "execve", "path", 0, 0)
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/bin/next\x00")
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    config = LazypolineConfig(reinstall_on_exec=True)
    Lazypoline._install(machine, proc, tr, config)
    code = machine.run_process(proc)
    assert code == 44
    # the post-exec getpid was interposed by the re-installed lazypoline
    assert "getpid" in tr.names
    assert proc.task.sud is not None


def test_execve_without_reinstall_stops_interposing(machine):
    t = asm()
    t.label("_start")
    emit_syscall(t, "getpid")
    emit_exit(t, 44)
    machine.register_binary("/bin/next", finish(t, name="next"))

    a = asm()
    a.label("_start")
    emit_syscall(a, "execve", "path", 0, 0)
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/bin/next\x00")
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 44
    assert "getpid" not in tr.names
    assert proc.task.sud is None


def test_jit_exhaustiveness_vs_sud_and_zpoline(machine):
    """The §V-A experiment: lazypoline's trace == SUD's trace, including
    the JIT-ed getpid; zpoline's misses it."""
    traces = {}
    for name, installer in [
        ("sud", SudTool._install),
        ("zpoline", Zpoline._install),
        ("lazypoline", Lazypoline._install),
    ]:
        m = Machine()
        tcc.setup_fs(m)
        proc = m.load(tcc.build_tcc_image())
        tr = TraceInterposer()
        installer(m, proc, tr)
        assert m.run_process(proc) == 0
        assert proc.stdout == b"ok\n"
        traces[name] = tr.names
    assert traces["lazypoline"] == traces["sud"]
    assert "getpid" in traces["lazypoline"]
    assert "getpid" not in traces["zpoline"]


def test_rewrite_disabled_degrades_to_sud_mode(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 3)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    tool = Lazypoline._install(
        machine, proc, tr, LazypolineConfig(rewrite=False)
    )
    machine.run_process(proc)
    assert tr.count("getpid") == 3
    assert not tool.rewritten  # every call took the slow path
    assert tool.slowpath_hits >= 4


def test_manual_rewrite_site_now(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", NR["getpid"])
    a.label("site")
    a.syscall()
    emit_exit(a, 0)
    img = finish(a)
    proc = machine.load(img)
    tool = Lazypoline._install(machine, proc, TraceInterposer())
    with pytest.raises(ValueError):
        tool.rewrite_site_now(img.symbols["_start"])  # not a syscall insn
    tool.rewrite_site_now(img.symbols["site"])
    assert proc.task.mem.read(img.symbols["site"], 2, check=None) == CALL_RAX_BYTES
    machine.run_process(proc)
    # the pre-rewritten site never took the slow path
    assert tool.slowpath_hits == 1  # only the exit_group site trapped


def test_interposer_return_value_reaches_app(machine):
    def fake_pid(ctx):
        if ctx.name == "getpid":
            ctx.do_syscall()
            return 4242 & 0xFF  # lie to the app
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc, fake_pid)
    assert machine.run_process(proc) == 4242 & 0xFF
