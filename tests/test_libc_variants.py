"""The modelled libc CRT variants (Table III root causes)."""

from __future__ import annotations

from repro.analysis.pin import RegisterPreservationTool
from repro.arch.encode import Assembler
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.libc.variants import (
    GLIBC_231_UBUNTU,
    GLIBC_239_CLEARLINUX,
    LIBC_VARIANTS,
)
from repro.loader.image import image_from_assembler
from repro.mem import layout


def _run_startup(variant, uses_threads: bool):
    machine = Machine()
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    variant.emit(a, uses_threads=uses_threads)
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    tool = RegisterPreservationTool()
    machine.kernel.cpu.add_hook(tool)
    process = machine.load(image_from_assembler("crt", a, entry="_start"))
    machine.run(until=lambda: not process.alive, max_instructions=200_000)
    assert process.exit_code == 0
    return machine, process, tool


def test_variant_registry():
    assert set(LIBC_VARIANTS) == {"glibc231-ubuntu2004", "glibc239-clearlinux"}
    assert GLIBC_231_UBUNTU.march == "x86-64-v1"
    assert GLIBC_239_CLEARLINUX.march == "x86-64-v3"


def test_ubuntu_startup_without_threads_is_clean():
    _machine, _proc, tool = _run_startup(GLIBC_231_UBUNTU, uses_threads=False)
    assert not tool.expects_xstate_preservation()


def test_ubuntu_pthread_init_matches_listing1():
    """The Listing-1 pattern: xmm0 live across set_tid_address AND
    set_robust_list, read back by a single movups."""
    _machine, _proc, tool = _run_startup(GLIBC_231_UBUNTU, uses_threads=True)
    findings = tool.xstate_findings
    assert findings
    assert all(f.register == "xmm0" for f in findings)
    syscalls = {f.syscall for f in findings}
    assert "set_tid_address" in syscalls


def test_ubuntu_startup_performs_the_canonical_syscalls():
    machine, _proc, _tool = _run_startup(GLIBC_231_UBUNTU, uses_threads=True)
    # the libc data page was mapped and __stack_user initialised: the
    # struct's prev/next fields both point at itself (Listing 1 semantics)


def test_ubuntu_stack_user_fields_written():
    machine, proc, _tool = _run_startup(GLIBC_231_UBUNTU, uses_threads=True)
    r15 = proc.task.regs.read_name("r15")
    from repro.libc.variants import STACK_USER_OFF

    addr = r15 + STACK_USER_OFF
    prev = proc.task.mem.read_u64(addr, check=None)
    next_ = proc.task.mem.read_u64(addr + 8, check=None)
    assert prev == next_ == addr  # both halves hold &__stack_user


def test_clearlinux_ptmalloc_init_always_present():
    for uses_threads in (False, True):
        _machine, _proc, tool = _run_startup(
            GLIBC_239_CLEARLINUX, uses_threads=uses_threads
        )
        assert tool.expects_xstate_preservation()
        syscalls = {f.syscall for f in tool.xstate_findings}
        assert syscalls == {"getrandom"}


def test_clearlinux_touches_avx_component():
    _machine, _proc, tool = _run_startup(GLIBC_239_CLEARLINUX, uses_threads=False)
    components = {f.component for f in tool.xstate_findings}
    assert components == {"sse", "avx"}  # the v3 code path


def test_clearlinux_main_arena_written():
    machine, proc, _tool = _run_startup(GLIBC_239_CLEARLINUX, uses_threads=False)
    from repro.libc.variants import MAIN_ARENA_OFF

    r15 = proc.task.regs.read_name("r15")
    arena = proc.task.mem.read_u64(r15 + MAIN_ARENA_OFF, check=None)
    # xmm1 was loaded with &main_arena then run through the v3 vaddpd
    # (doubling each lane) before the store.
    assert arena == (2 * (r15 + MAIN_ARENA_OFF)) & ((1 << 64) - 1)
