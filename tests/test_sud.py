"""Syscall User Dispatch semantics (Fig. 1 of the paper)."""

from __future__ import annotations

from repro.kernel.signals import SIGSEGV, SIGSYS
from repro.kernel.sud import (
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_ON,
    SELECTOR_ALLOW,
    SELECTOR_BLOCK,
    SudState,
)
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def test_selector_allow_passes_through(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    img = finish(a)
    proc = machine.load(img)
    from repro.mem.pages import Perm

    sel = proc.task.mem.map_anywhere(4096, Perm.RW)
    proc.task.mem.write_u8(sel, SELECTOR_ALLOW, check=None)
    proc.task.sud = SudState(selector_addr=sel, allow_start=0, allow_len=0)
    code = machine.run_process(proc)
    assert code == proc.task.pid & 0xFF


def test_selector_block_delivers_sigsys(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    from repro.mem.pages import Perm

    sel = proc.task.mem.map_anywhere(4096, Perm.RW)
    proc.task.mem.write_u8(sel, SELECTOR_BLOCK, check=None)
    proc.task.sud = SudState(selector_addr=sel, allow_start=0, allow_len=0)
    machine.run(until=lambda: not proc.alive)
    # no SIGSYS handler installed: default action kills
    assert proc.term_signal == SIGSYS


def test_allowlisted_range_bypasses_selector(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 7)
    img = finish(a)
    proc = machine.load(img)
    from repro.mem.pages import Perm

    sel = proc.task.mem.map_anywhere(4096, Perm.RW)
    proc.task.mem.write_u8(sel, SELECTOR_BLOCK, check=None)
    # allowlist the whole text segment: nothing is dispatched
    text = img.segments[0]
    proc.task.sud = SudState(
        selector_addr=sel, allow_start=text.addr, allow_len=len(text.data)
    )
    code = machine.run_process(proc)
    assert code == 7


def test_prctl_enables_sud_from_guest(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")  # selector page, byte 0 == 0 == ALLOW
    a.mov_imm("rdi", PR_SET_SYSCALL_USER_DISPATCH)
    a.mov_imm("rsi", PR_SYS_DISPATCH_ON)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov("r8", "r12")
    a.mov_imm("rax", NR["prctl"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jnz("bad")
    emit_syscall(a, "getpid")  # selector == ALLOW: passes
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.task.sud is not None  # armed by the guest's own prctl


def test_sud_cleared_on_fork(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    emit_syscall(a, "getpid")  # would SIGSYS if SUD were inherited
    emit_exit(a, 5)
    img = finish(a)
    proc = machine.load(img)
    from repro.mem.pages import Perm

    sel = proc.task.mem.map_anywhere(4096, Perm.RW)
    proc.task.mem.write_u8(sel, SELECTOR_BLOCK, check=None)
    # allowlist only the fork and wait4 sites (whole text for simplicity),
    # then verify the child's syscalls don't trap even though its copied
    # selector says BLOCK — SUD is per-task and not inherited.
    text = img.segments[0]
    proc.task.sud = SudState(
        selector_addr=sel,
        allow_start=text.addr,
        allow_len=len(text.data),
    )
    code = machine.run_process(proc)
    assert code == 0
    child = [t for t in machine.kernel.tasks.values() if t.parent is proc.task][0]
    assert child.sud is None
    assert child.exit_code == 5


def test_unreadable_selector_is_sigsegv(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    proc.task.sud = SudState(selector_addr=0xDEAD000, allow_start=0, allow_len=0)
    machine.run(until=lambda: not proc.alive)
    assert proc.term_signal == SIGSEGV


def test_sigsys_carries_syscall_number_and_addr(machine):
    """A SIGSYS handler can recover the syscall nr and the call address —
    everything lazypoline's slow path needs."""
    from repro.kernel.signals import SI_ADDR, SI_SYSCALL, FRAME_SIGINFO

    seen = {}

    a = asm()
    a.label("_start")
    a.mov_imm("rax", 39)  # getpid
    a.label("site")
    a.syscall()
    emit_exit(a, 0)
    a.label("handler")
    a.hcall(0)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    img = finish(a)

    def on_hcall(ctx):
        rsi = ctx.regs.read(6)
        frame = rsi - FRAME_SIGINFO
        seen["sysno"] = ctx.mem.read_u32(frame + SI_SYSCALL, check=None)
        seen["addr"] = ctx.mem.read_u64(frame + SI_ADDR, check=None)
        # let the program continue: set selector to ALLOW
        ctx.mem.write_u8(seen["sel"], SELECTOR_ALLOW, check=None)

    hid = machine.kernel.register_hcall(on_hcall)
    assert hid == 0
    proc = machine.load(img)
    from repro.kernel.task import SigAction
    from repro.kernel.signals import SA_SIGINFO
    from repro.mem.pages import Perm

    sel = proc.task.mem.map_anywhere(4096, Perm.RW)
    seen["sel"] = sel
    proc.task.mem.write_u8(sel, SELECTOR_BLOCK, check=None)
    proc.task.sighand.set(SIGSYS, SigAction(handler=img.symbols["handler"], flags=SA_SIGINFO))
    proc.task.sud = SudState(selector_addr=sel, allow_start=0, allow_len=0)
    code = machine.run_process(proc)
    assert code == 0
    assert seen["sysno"] == 39
    # si_call_addr points just past the 2-byte syscall instruction
    assert seen["addr"] == img.symbols["site"] + 2
