"""The cBPF interpreter and seccomp filter semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import BpfError
from repro.kernel.seccomp import (
    BPF_ABS,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    BpfInsn,
    BpfProgram,
    FilterBuilder,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRAP,
    SeccompData,
    evaluate_filters,
    jump,
    run_bpf,
    stmt,
)
from repro.kernel.seccomp.bpf import (
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_IMM,
    BPF_LSH,
    BPF_MEM,
    BPF_MISC,
    BPF_OR,
    BPF_RSH,
    BPF_ST,
    BPF_SUB,
    BPF_TAX,
    BPF_TXA,
    BPF_XOR,
    BPF_LDX,
)
from repro.kernel.signals import AUDIT_ARCH_X86_64

_LD = BPF_LD | BPF_W | BPF_ABS
_RET = BPF_RET | BPF_K


def data(nr=0, ip=0, args=(0, 0, 0, 0, 0, 0)):
    return SeccompData(nr, AUDIT_ARCH_X86_64, ip, tuple(args)).pack()


def test_ret_k():
    prog = BpfProgram([stmt(_RET, 0x1234)])
    assert run_bpf(prog, data())[0] == 0x1234


def test_ld_nr_and_jeq():
    prog = BpfProgram(
        [
            stmt(_LD, 0),  # A = nr
            jump(BPF_JMP | BPF_JEQ | BPF_K, 42, 0, 1),
            stmt(_RET, 1),  # nr == 42
            stmt(_RET, 2),
        ]
    )
    assert run_bpf(prog, data(nr=42))[0] == 1
    assert run_bpf(prog, data(nr=7))[0] == 2


def test_jgt_jge_jset():
    for op, k, nr, expect in [
        (BPF_JGT, 10, 11, 1),
        (BPF_JGT, 10, 10, 2),
        (BPF_JGE, 10, 10, 1),
        (BPF_JSET, 0x8, 0xC, 1),
        (BPF_JSET, 0x8, 0x4, 2),
    ]:
        prog = BpfProgram(
            [
                stmt(_LD, 0),
                jump(BPF_JMP | op | BPF_K, k, 0, 1),
                stmt(_RET, 1),
                stmt(_RET, 2),
            ]
        )
        assert run_bpf(prog, data(nr=nr))[0] == expect


def test_unconditional_jump():
    prog = BpfProgram(
        [
            stmt(BPF_JMP | BPF_JA, 1),
            stmt(_RET, 111),  # skipped
            stmt(_RET, 222),
        ]
    )
    assert run_bpf(prog, data())[0] == 222


def test_alu_operations():
    cases = [
        (BPF_ADD, 5, 3, 8),
        (BPF_SUB, 5, 3, 2),
        (BPF_AND, 0xFC, 0x0F, 0x0C),
        (BPF_OR, 0xF0, 0x0F, 0xFF),
        (BPF_XOR, 0xFF, 0x0F, 0xF0),
        (BPF_LSH, 1, 4, 16),
        (BPF_RSH, 16, 4, 1),
    ]
    for op, a_val, k, expect in cases:
        prog = BpfProgram(
            [
                stmt(BPF_LD | BPF_IMM, a_val),
                stmt(BPF_ALU | op | BPF_K, k),
                stmt(BPF_RET | 0x10, 0),  # RET A
            ]
        )
        assert run_bpf(prog, data())[0] == expect


def test_scratch_memory_and_tax_txa():
    prog = BpfProgram(
        [
            stmt(BPF_LD | BPF_IMM, 99),
            stmt(BPF_ST, 3),  # M[3] = A
            stmt(BPF_LD | BPF_IMM, 0),
            stmt(BPF_LDX | BPF_MEM, 3),  # X = M[3]
            stmt(BPF_MISC | BPF_TXA, 0),  # A = X
            stmt(BPF_RET | 0x10, 0),
        ]
    )
    assert run_bpf(prog, data())[0] == 99
    prog2 = BpfProgram(
        [
            stmt(BPF_LD | BPF_IMM, 7),
            stmt(BPF_MISC | BPF_TAX, 0),
            stmt(BPF_LD | BPF_IMM, 0),
            stmt(BPF_MISC | BPF_TXA, 0),
            stmt(BPF_RET | 0x10, 0),
        ]
    )
    assert run_bpf(prog2, data())[0] == 7


def test_out_of_bounds_load_rejects():
    prog = BpfProgram([stmt(_LD, 1000), stmt(_RET, 5)])
    assert run_bpf(prog, data())[0] == 0


def test_validator_rejects_bad_jumps():
    with pytest.raises(BpfError):
        BpfProgram([jump(BPF_JMP | BPF_JEQ | BPF_K, 0, 5, 0), stmt(_RET, 0)])
    with pytest.raises(BpfError):
        BpfProgram([stmt(BPF_JMP | BPF_JA, 100), stmt(_RET, 0)])


def test_validator_rejects_fallthrough():
    with pytest.raises(BpfError):
        BpfProgram([stmt(BPF_LD | BPF_IMM, 1)])


def test_validator_rejects_empty():
    with pytest.raises(BpfError):
        BpfProgram([])


def test_insn_count_reported():
    prog = BpfProgram([stmt(BPF_LD | BPF_IMM, 1), stmt(_RET, 0)])
    _ret, executed = run_bpf(prog, data())
    assert executed == 2


# ------------------------------------------------------------- filter builder
def test_deny_syscalls_filter():
    prog = FilterBuilder.deny_syscalls([2, 41], SECCOMP_RET_ERRNO | 13)
    for nr, expect in [(2, SECCOMP_RET_ERRNO | 13), (41, SECCOMP_RET_ERRNO | 13),
                       (0, SECCOMP_RET_ALLOW), (39, SECCOMP_RET_ALLOW)]:
        assert run_bpf(prog, data(nr=nr))[0] == expect


def test_deny_syscalls_with_arch_check():
    prog = FilterBuilder.deny_syscalls([2], SECCOMP_RET_ERRNO | 1,
                                       check_arch=AUDIT_ARCH_X86_64)
    assert run_bpf(prog, data(nr=2))[0] == SECCOMP_RET_ERRNO | 1
    assert run_bpf(prog, data(nr=3))[0] == SECCOMP_RET_ALLOW
    bad_arch = SeccompData(3, 0x1234, 0, (0,) * 6).pack()
    assert run_bpf(prog, bad_arch)[0] == SECCOMP_RET_KILL_PROCESS


def test_allowlist_filter():
    prog = FilterBuilder.allowlist_syscalls([0, 1, 60], SECCOMP_RET_ERRNO | 1)
    for nr in (0, 1, 60):
        assert run_bpf(prog, data(nr=nr))[0] == SECCOMP_RET_ALLOW
    assert run_bpf(prog, data(nr=2))[0] == SECCOMP_RET_ERRNO | 1


def test_ip_range_filter():
    prog = FilterBuilder.trap_all_except_ip_range(0x1000, 0x1000)
    assert run_bpf(prog, data(ip=0x1500))[0] == SECCOMP_RET_ALLOW
    assert run_bpf(prog, data(ip=0x0FFF))[0] == SECCOMP_RET_TRAP
    assert run_bpf(prog, data(ip=0x2000))[0] == SECCOMP_RET_TRAP


@given(st.integers(min_value=0, max_value=499))
def test_allowlist_exact_property(nr):
    allowed = [0, 1, 3, 39, 60, 231]
    prog = FilterBuilder.allowlist_syscalls(allowed, SECCOMP_RET_ERRNO | 1)
    ret = run_bpf(prog, data(nr=nr))[0]
    if nr in allowed:
        assert ret == SECCOMP_RET_ALLOW
    else:
        assert ret == SECCOMP_RET_ERRNO | 1


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**20))
def test_ip_range_property(start, length):
    if (start & 0xFFFFFFFF) + length > 1 << 32:
        with pytest.raises(ValueError):
            FilterBuilder.trap_all_except_ip_range(start, length)
        return
    prog = FilterBuilder.trap_all_except_ip_range(start, length)
    inside = start + length // 2
    if length:
        assert run_bpf(prog, data(ip=inside))[0] == SECCOMP_RET_ALLOW
    # one byte below the range is always trapped
    if start:
        assert run_bpf(prog, data(ip=start - 1))[0] == SECCOMP_RET_TRAP


# ----------------------------------------------------------- multi-filter
def test_most_restrictive_filter_wins():
    allow = FilterBuilder.allow_all()
    deny = FilterBuilder.deny_syscalls([7], SECCOMP_RET_ERRNO | 5)
    trap = FilterBuilder.trap_all()
    d = SeccompData(7, AUDIT_ARCH_X86_64, 0, (0,) * 6)
    result = evaluate_filters([allow, deny], d)
    assert result.action == SECCOMP_RET_ERRNO
    assert result.data == 5
    result = evaluate_filters([allow, deny, trap], d)
    assert result.action == SECCOMP_RET_TRAP
    # insn counts accumulate across filters
    assert result.insns_executed > 3


# --------------------------------------------------------- guest-facing path
def test_guest_installs_filter_via_seccomp_syscall(machine):
    """A guest program installs a denylist through the seccomp syscall and
    then observes EPERM on the denied call."""
    import struct

    from repro.kernel.syscalls.table import NR
    from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program

    prog = FilterBuilder.deny_syscalls([NR["mkdir"]], SECCOMP_RET_ERRNO | 1)
    raw = b"".join(
        struct.pack("<HBBI", i.code, i.jt, i.jf, i.k) for i in prog.insns
    )

    a = asm()
    a.label("_start")
    # write the filter program into an anonymous mapping
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # sock_fprog at r12: {len, pad, ptr到insns @ r12+16}
    a.mov_imm("rcx", len(prog.insns))
    a.store("r12", 0, "rcx")
    a.lea("rcx", "r12", 16)
    a.store("r12", 8, "rcx")
    offset = 16
    for insn in prog.insns:
        packed = struct.pack("<HBBI", insn.code, insn.jt, insn.jf, insn.k)
        a.mov_imm("rcx", int.from_bytes(packed, "little"))
        a.store("r12", offset, "rcx")
        offset += 8
    # seccomp(SET_MODE_FILTER, 0, r12)
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", 0)
    a.mov("rdx", "r12")
    a.mov_imm("rax", NR["seccomp"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jnz("bad")
    # mkdir must now fail with EPERM (errno 1)
    emit_syscall(a, "mkdir", "path", 0o755)
    a.cmpi("rax", -1)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/newdir\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == 0
