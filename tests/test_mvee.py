"""The multi-variant execution monitor."""

from __future__ import annotations

import pytest

from repro.apps.mvee import MveeMonitor
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish


def _deterministic_image():
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_syscall(a, "write", 1, "msg", 6)
    emit_exit(a, 0)
    a.label("msg")
    a.db(b"hello\n")
    return finish(a, name="det")


def _random_branching_image():
    """Control flow depends on per-variant state (the pid): consecutive
    replicas take different branches, guaranteeing a divergence."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rcx", "rax")
    a.andi("rcx", 1)
    a.cmpi("rcx", 0)
    a.jz("even")
    emit_syscall(a, "getppid")  # odd-pid path
    emit_exit(a, 0)
    a.label("even")
    emit_syscall(a, "gettid")  # even-pid path: different syscall stream
    emit_exit(a, 0)
    return finish(a, name="rng")


def test_identical_variants_run_clean(machine):
    monitor = MveeMonitor(machine, _deterministic_image(), variants=2)
    report = monitor.run()
    assert not report.diverged
    assert report.syscalls_compared >= 3
    assert report.exit_codes == [0, 0]
    # every variant produced the same observable output
    assert all(p.stdout == b"hello\n" for p in monitor.processes)


def test_three_variants(machine):
    monitor = MveeMonitor(machine, _deterministic_image(), variants=3)
    report = monitor.run()
    assert not report.diverged
    assert report.variants == 3


def test_streams_are_lockstep_compared(machine):
    monitor = MveeMonitor(machine, _deterministic_image(), variants=2)
    monitor.run()
    assert monitor.streams[0] == monitor.streams[1]


def test_divergence_detected_and_replicas_killed(machine):
    """Entropy-dependent control flow: the variants pull different values
    from the (shared) entropy stream, take different branches, and the
    monitor flags the divergent syscall."""
    monitor = MveeMonitor(machine, _random_branching_image(), variants=2)
    report = monitor.run()
    assert report.diverged
    nrs = {nr for nr, _args in report.divergence.entries.values()}
    # the divergence is visible as different syscall numbers or arguments
    assert len(report.divergence.entries) == 2
    assert "divergence at syscall" in str(report.divergence)
    # replicas were terminated by the monitor
    assert all(not p.alive for p in monitor.processes)
    del nrs


def test_requires_two_variants(machine):
    with pytest.raises(ValueError):
        MveeMonitor(machine, _deterministic_image(), variants=1)


def test_without_lockstep_traces_still_collected(machine):
    monitor = MveeMonitor(
        machine, _deterministic_image(), variants=2, lockstep=False
    )
    report = monitor.run()
    assert not report.diverged
    assert len(monitor.streams[0]) == len(monitor.streams[1]) >= 3


def test_mvee_overhead_is_bounded():
    """Lockstep costs scheduling, not orders of magnitude."""

    def run(variants):
        machine = Machine()
        if variants == 0:
            proc = machine.load(_deterministic_image())
            machine.run_process(proc)
        else:
            MveeMonitor(machine, _deterministic_image(), variants=variants).run()
        return machine.clock

    native = run(0)
    mvee2 = run(2)
    # Two replicas, each paying lazypoline's one-time slow path on every
    # site (the program is tiny, so rewriting never amortises here):
    # bounded well below ptrace-based monitors' blowup.
    assert 2 * native < mvee2 < 20 * native
