"""EINTR on interruptible waits, under every degradation mode.

A guest parks itself in a blocking syscall — ``read`` on an empty pipe,
``accept`` on an idle listening socket, ``wait4`` on a live child — while
a forked child pelts it with SIGUSR1.  POSIX says the wait aborts with
``-EINTR`` after the handler runs; that must hold identically when the
syscall is interposed in FULL_HYBRID, when it takes the SUD_ONLY slow
path, and when a PASSTHROUGH attach armed nothing at all.  The wake-up
path (kernel ``WouldBlock`` + ``post_signal``) is completely different
from the happy path the differential scenarios cover, which is why it
gets its own matrix.
"""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.faults import FaultInjector, FaultRule
from repro.interpose import Mode, attach
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.signals import SIGUSR1
from repro.kernel.syscalls.table import NR
from repro.loader import image_from_assembler
from repro.mem import layout
from repro.mem.pages import PAGE_SIZE

pytestmark = pytest.mark.degrade

KINDS = ("read", "accept", "wait")
MODES = ("bare", "full_hybrid", "sud_only", "passthrough")

EXIT_OK = 0x42  # wait returned -EINTR and the handler ran
EXIT_BAD = 0x99


def build_eintr_guest(kind: str):
    """Parent blocks in ``kind``; forked child signals it until it wakes.

    Scratch page (r14): [0] handler count, [8] pid, [16] tid,
    [32] pipe fd pair, [48] sockaddr, [64] read/status buffer.
    The child retries ``tgkill`` + ``sched_yield`` eight times so at least
    one signal lands while the parent is actually parked, wherever the
    scheduler interleaves the two.
    """
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.store("r14", 8, "rax")
    a.mov_imm("rax", NR["gettid"])
    a.syscall()
    a.store("r14", 16, "rax")
    if kind == "read":
        a.lea("rdi", "r14", 32)
        a.mov_imm("rax", NR["pipe"])
        a.syscall()
        a.load("rbx", "r14", 32)  # low u32 = read end
        a.shl("rbx", 32)
        a.shr("rbx", 32)
    elif kind == "accept":
        a.mov_imm("rdi", 2)
        a.mov_imm("rsi", 1)
        a.mov_imm("rdx", 0)
        a.mov_imm("rax", NR["socket"])
        a.syscall()
        a.mov("rbx", "rax")
        a.mov_imm("rcx", 0x1F)  # port 8080 = 0x1F90, network byte order
        a.store8("r14", 50, "rcx")
        a.mov_imm("rcx", 0x90)
        a.store8("r14", 51, "rcx")
        a.mov("rdi", "rbx")
        a.lea("rsi", "r14", 48)
        a.mov_imm("rdx", 16)
        a.mov_imm("rax", NR["bind"])
        a.syscall()
        a.mov("rdi", "rbx")
        a.mov_imm("rsi", 16)
        a.mov_imm("rax", NR["listen"])
        a.syscall()
    a.mov_imm("rax", NR["fork"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    # ------------------------------------------------- parent: block
    if kind == "read":
        a.mov("rdi", "rbx")
        a.lea("rsi", "r14", 64)
        a.mov_imm("rdx", 16)
        a.mov_imm("rax", NR["read"])
        a.syscall()
    elif kind == "accept":
        a.mov("rdi", "rbx")
        a.mov_imm("rsi", 0)
        a.mov_imm("rdx", 0)
        a.mov_imm("rax", NR["accept"])
        a.syscall()
    else:  # wait4 on the live child
        a.mov_imm("rdi", (1 << 64) - 1)
        a.lea("rsi", "r14", 64)
        a.mov_imm("rdx", 0)
        a.mov_imm("r10", 0)
        a.mov_imm("rax", NR["wait4"])
        a.syscall()
    a.mov("rdi", "rax")
    a.addi("rdi", errno.EINTR)  # ret == -EINTR  <=>  rdi == 0
    a.cmpi("rdi", 0)
    a.jnz("bad")
    a.load("rcx", "r14", 0)  # and the handler really ran
    a.cmpi("rcx", 0)
    a.jz("bad")
    a.mov_imm("rdi", EXIT_OK)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("bad")
    a.mov_imm("rdi", EXIT_BAD)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    # -------------------------------------------------- child: pester
    a.label("child")
    a.mov_imm("rbx", 8)
    a.label("pester")
    a.load("rdi", "r14", 8)
    a.load("rsi", "r14", 16)
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    a.mov_imm("rax", NR["sched_yield"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("pester")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("h")
    a.load("rdx", "r14", 0)
    a.inc("rdx")
    a.store("r14", 0, "rdx")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("h")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return image_from_assembler(f"eintr_{kind}_guest", a, entry="_start")


def _run(kind: str, mode: str) -> tuple[int | None, object | None]:
    machine = Machine(
        mmap_min_addr=PAGE_SIZE if mode == "sud_only" else 0
    )
    if mode == "passthrough":
        machine.kernel.fault_injector = FaultInjector(
            (FaultRule(errno=errno.ENOMEM, name="mmap", max_injections=2),)
        )
    process = machine.load(build_eintr_guest(kind))
    tool = None
    if mode != "bare":
        tool = attach(
            machine, process, tool="lazypoline",
            degrade_policy="passthrough" if mode == "passthrough" else None,
        )
    machine.run(
        until=lambda: not any(
            t.alive for t in machine.kernel.tasks.values()
        ),
        max_instructions=2_000_000,
    )
    return process.exit_code, tool


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("mode", MODES)
def test_interrupted_wait_returns_eintr(kind, mode):
    exit_code, tool = _run(kind, mode)
    assert exit_code == EXIT_OK
    if tool is not None:
        expected = {
            "full_hybrid": Mode.FULL_HYBRID,
            "sud_only": Mode.SUD_ONLY,
            "passthrough": Mode.PASSTHROUGH,
        }[mode]
        assert tool.mode is expected


@pytest.mark.parametrize("kind", KINDS)
def test_interposed_wait_sees_the_interrupted_syscall(kind):
    """The interposer observes the blocking syscall exactly once even
    though it was aborted by a signal (no phantom re-issue)."""
    from repro.interpose.api import TraceInterposer

    machine = Machine()
    process = machine.load(build_eintr_guest(kind))
    trace = TraceInterposer()
    attach(machine, process, tool="lazypoline", interposer=trace)
    machine.run(
        until=lambda: not any(
            t.alive for t in machine.kernel.tasks.values()
        ),
        max_instructions=2_000_000,
    )
    assert process.exit_code == EXIT_OK
    blocker = {"read": "read", "accept": "accept", "wait": "wait4"}[kind]
    parent_tid = process.task.tid
    seen = [
        e.data["name"]
        for e in trace.tracer.events
        if e.tid == parent_tid and e.data["name"] == blocker
    ]
    assert seen == [blocker]
