"""The removed ``*Tool.install`` shims: raise ``AttachError`` with a hint.

PR 3 deprecated the per-class ``install`` constructors with a
``DeprecationWarning``; this PR completes the migration.  Every shim now
raises :class:`repro.errors.AttachError` naming the
:func:`repro.interpose.attach` replacement, machine state is never
touched by a failed call, and attaching through the unified API still
works (and never warns).
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import AttachError
from repro.faults.corpus import CORPUS
from repro.interpose import attach
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.preload_tool import PreloadTool
from repro.interpose.ptrace_tool import PtraceTool
from repro.interpose.seccomp_bpf_tool import SeccompBpfTool
from repro.interpose.seccomp_user_tool import SeccompUserTool
from repro.interpose.sud_tool import SudTool
from repro.interpose.usernotif_tool import UserNotifTool
from repro.interpose.zpoline import Zpoline
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR

#: registry name -> removed shim invocation.
SHIMS = {
    "lazypoline": lambda m, p: Lazypoline.install(m, p),
    "zpoline": lambda m, p: Zpoline.install(m, p),
    "sud": lambda m, p: SudTool.install(m, p),
    "seccomp_user": lambda m, p: SeccompUserTool.install(m, p),
    "seccomp_bpf": lambda m, p: SeccompBpfTool.install(m, p),
    "seccomp_unotify": lambda m, p: UserNotifTool.install(m, p),
    "ptrace": lambda m, p: PtraceTool.install(m, p),
    "preload": lambda m, p: PreloadTool.install(m, p),
}


def _final_state(machine, process):
    return {
        "exit": process.exit_code,
        "signal": process.term_signal,
        "stdout": process.stdout,
        "clock": machine.kernel.clock,
        "instructions": machine.scheduler.total_instructions,
    }


def _run(installer):
    machine = Machine()
    process = machine.load(CORPUS["syscall_loop"].build())
    tool = installer(machine, process)
    machine.run(
        until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
        max_instructions=3_000_000,
    )
    return tool, _final_state(machine, process)


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_raises_attach_error(name):
    machine = Machine()
    process = machine.load(CORPUS["syscall_loop"].build())
    clock_before = machine.kernel.clock
    with pytest.raises(AttachError, match=r"removed.*repro\.interpose\.attach"):
        SHIMS[name](machine, process)
    # a failed install never touched the machine
    assert machine.kernel.clock == clock_before
    assert process.task.seccomp_filters == []
    assert process.task.sud is None


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_attach_replacement_works_and_never_warns(name):
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # attach itself must never warn
        _, state = _run(lambda m, p: attach(m, p, tool=name))
    assert state["exit"] == 0


def test_hint_names_the_registry_tool():
    with pytest.raises(AttachError, match=r"tool='lazypoline'"):
        Lazypoline.install(None, None)
    with pytest.raises(AttachError, match=r"tool='zpoline'"):
        Zpoline.install(None, None)


def test_seccomp_bpf_denylist_shim_raises():
    sysnos = [NR["open"]]
    with pytest.raises(AttachError, match=r"install_denylist.*denylist="):
        SeccompBpfTool.install_denylist(None, None, sysnos)
    _, state = _run(
        lambda m, p: attach(m, p, tool="seccomp_bpf", denylist=sysnos)
    )
    assert state["exit"] == 0


def test_seccomp_unotify_sysnos_shim_raises():
    sysnos = [NR["getpid"]]
    with pytest.raises(AttachError, match=r"install_for_syscalls.*sysnos="):
        UserNotifTool.install_for_syscalls(None, None, sysnos)
    _, state = _run(
        lambda m, p: attach(m, p, tool="seccomp_unotify", sysnos=sysnos)
    )
    assert state["exit"] == 0
