"""The deprecated ``*Tool.install`` shims: warn, then behave identically.

Every registry tool keeps its old per-class ``install`` constructor as a
shim over :func:`repro.interpose.attach`.  Each shim must (a) emit a
``DeprecationWarning`` naming the replacement and (b) produce machine
state identical to attaching through the unified API — same exit status,
stdout, final clock and instruction count.
"""

from __future__ import annotations

import warnings

import pytest

from repro.faults.corpus import CORPUS
from repro.interpose import attach
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.preload_tool import PreloadTool
from repro.interpose.ptrace_tool import PtraceTool
from repro.interpose.seccomp_bpf_tool import SeccompBpfTool
from repro.interpose.seccomp_user_tool import SeccompUserTool
from repro.interpose.sud_tool import SudTool
from repro.interpose.usernotif_tool import UserNotifTool
from repro.interpose.zpoline import Zpoline
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR

#: registry name -> shim invocation, mirroring attach(tool=name) defaults.
SHIMS = {
    "lazypoline": lambda m, p: Lazypoline.install(m, p),
    "zpoline": lambda m, p: Zpoline.install(m, p),
    "sud": lambda m, p: SudTool.install(m, p),
    "seccomp_user": lambda m, p: SeccompUserTool.install(m, p),
    "seccomp_bpf": lambda m, p: SeccompBpfTool.install(m, p),
    "seccomp_unotify": lambda m, p: UserNotifTool.install(m, p),
    "ptrace": lambda m, p: PtraceTool.install(m, p),
    "preload": lambda m, p: PreloadTool.install(m, p),
}


def _final_state(machine, process):
    return {
        "exit": process.exit_code,
        "signal": process.term_signal,
        "stdout": process.stdout,
        "clock": machine.kernel.clock,
        "instructions": machine.scheduler.total_instructions,
    }


def _run(installer):
    machine = Machine()
    process = machine.load(CORPUS["syscall_loop"].build())
    tool = installer(machine, process)
    machine.run(
        until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
        max_instructions=3_000_000,
    )
    return tool, _final_state(machine, process)


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_warns_and_matches_attach(name):
    with pytest.warns(DeprecationWarning, match="use\\s+repro.interpose.attach"):
        shim_tool, shim_state = _run(SHIMS[name])
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # attach itself must never warn
        attach_tool, attach_state = _run(
            lambda m, p: attach(m, p, tool=name)
        )
    assert type(shim_tool) is type(attach_tool)
    assert shim_state == attach_state
    assert shim_state["exit"] == 0


def test_seccomp_bpf_denylist_shim():
    """The convenience denylist constructor warns and matches
    ``attach(..., denylist=[...])``."""
    sysnos = [NR["open"]]
    with pytest.warns(DeprecationWarning, match="install_denylist"):
        _, shim_state = _run(
            lambda m, p: SeccompBpfTool.install_denylist(m, p, sysnos)
        )
    _, attach_state = _run(
        lambda m, p: attach(m, p, tool="seccomp_bpf", denylist=sysnos)
    )
    assert shim_state == attach_state
    # the denylist really bit: open failed, so the file write was skipped
    assert shim_state["exit"] == 0


def test_seccomp_unotify_sysnos_shim():
    sysnos = [NR["getpid"]]
    with pytest.warns(DeprecationWarning, match="install_for_syscalls"):
        _, shim_state = _run(
            lambda m, p: UserNotifTool.install_for_syscalls(m, p, sysnos)
        )
    _, attach_state = _run(
        lambda m, p: attach(m, p, tool="seccomp_unotify", sysnos=sysnos)
    )
    assert shim_state == attach_state
    assert shim_state["exit"] == 0
