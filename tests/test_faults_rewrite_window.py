"""Signal delivery at *every* instruction boundary of lazypoline's windows.

The strongest §IV-A claim is that the fast-path stub, the SIGSYS rewrite
slow path and the sigreturn trampoline are signal-safe at every single
instruction.  This suite makes that claim falsifiable: a two-thread guest
runs under lazypoline while the schedule explorer delivers an extra signal
at one chosen boundary per run; sweeping all boundaries, with per-
instruction invariant checks riding along:

* the selector byte is always a legal value,
* the per-task sigreturn selector stack is bounds-correct, empty whenever
  a task executes main application code, and non-empty inside a wrapped
  handler,
* the xstate stack never leaks an entry,
* every rewritten syscall site holds exactly ``call rax`` afterwards.

Coverage is *asserted*, not eyeballed: the test fails if any boundary of
the probed windows was never reached while armed.
"""

from __future__ import annotations

import pytest

from repro.arch.isa import CALL_RAX_BYTES, SYSCALL_BYTES
from repro.cpu.hooks import WindowWatch
from repro.faults.explorer import (
    ExplorerPolicy,
    SignalTrigger,
    instruction_boundaries,
    lazypoline_windows,
)
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline, gsrel
from repro.kernel.machine import Machine
from repro.kernel.signals import SIGUSR1, SIGUSR2
from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS
from repro.kernel.syscalls.table import NR
from repro.mem import layout

from tests.conftest import asm, finish

pytestmark = pytest.mark.faults

PROBE_WINDOWS = ("stub", "slowpath", "trampoline")


def build_two_thread_guest():
    """Two threads, two wrapped handlers, one tgkill'd SIGUSR1.

    Shared counters: +0 SIGUSR1 count, +8 SIGUSR2 count, +16 worker-done
    flag.  Exit code packs both counters; the clean outcome is 0x11
    regardless of where the explorer injects SIGUSR2 or which thread
    receives it.
    """
    a = asm()
    a.label("_start")
    # scratch + worker stack
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 16384)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    for sig, act in ((SIGUSR1, "act1"), (SIGUSR2, "act2")):
        a.mov_imm("rdi", sig)
        a.mov_imm("rsi", act)
        a.mov_imm("rdx", 0)
        a.mov_imm("r10", 8)
        a.mov_imm("rax", NR["rt_sigaction"])
        a.syscall()
    # clone the worker with its stack at the top of the mapping
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r14", 16384)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("worker")
    a.label("armed")  # handlers live + worker cloned past this point
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.mov("r13", "rax")
    a.mov_imm("rax", NR["gettid"])
    a.syscall()
    a.mov("rsi", "rax")
    a.mov("rdi", "r13")
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    # keep issuing syscalls so stub boundaries stay reachable post-arm
    a.mov_imm("rbx", 4)
    a.label("tail")
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("tail")
    # pure-memory wait for the worker (a syscall here would make the
    # trace length schedule-dependent)
    a.label("join")
    a.load("rcx", "r14", 16)
    a.cmpi("rcx", 1)
    a.jnz("join")
    a.load("rdi", "r14", 0)
    a.load("rcx", "r14", 8)
    a.shl("rcx", 4)
    a.add("rdi", "rcx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("worker")
    a.mov_imm("rbx", 6)
    a.label("work")
    a.mov_imm("rax", NR["gettid"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("work")
    a.mov_imm("rcx", 1)
    a.store("r14", 16, "rcx")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    a.label("handlers")
    a.label("h1")
    a.load("rdx", "r14", 0)
    a.inc("rdx")
    a.store("r14", 0, "rdx")
    a.ret()
    a.label("h2")
    a.load("rdx", "r14", 8)
    a.inc("rdx")
    a.store("r14", 8, "rdx")
    a.ret()
    a.label("handlers_end")
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("act2")
    a.dq("h2")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return finish(a, "two_thread_guest")


class GsInvariantWatch:
    """CpuHook asserting the selector/stack invariants at every instruction.

    INVARIANT: for any task with a live gs region —
    * the selector byte is SELECTOR_ALLOW (0) or SELECTOR_BLOCK (1),
    * the sigreturn selector stack pointer stays inside its 64-slot bounds,
    * its depth is 0 whenever rip is in main application code, and >= 1
      while rip is inside a wrapped handler body (the wrapper pushed the
      interrupted selector at delivery and sigreturn pops it),
    * the xstate stack depth stays within [0, XSTACK_DEPTH].
    """

    def __init__(self, handler_range: tuple[int, int], app_end: int):
        self.handler_range = handler_range
        self.app_end = app_end
        self.violations: list[str] = []

    def on_insn(self, task, insn, addr) -> None:
        gs = task.regs.gs_base
        if not gs or self.violations:
            return
        mem = task.mem
        sel = gsrel.read_selector(mem, gs)
        if sel not in (0, 1):
            self.violations.append(
                f"tid {task.tid} rip={addr:#x}: selector byte {sel}"
            )
            return
        sp = mem.read_u64(gs + gsrel.GS_SIGRET_SP, check=None)
        lo = gs + gsrel.GS_SIGRET_STACK
        hi = lo + 8 * gsrel.SIGRET_STACK_SLOTS
        if not lo <= sp <= hi:
            self.violations.append(
                f"tid {task.tid} rip={addr:#x}: sigret sp {sp:#x} "
                f"outside [{lo:#x}, {hi:#x}]"
            )
            return
        depth = (sp - lo) // 8
        h_lo, h_hi = self.handler_range
        if h_lo <= addr < h_hi:
            if depth < 1:
                self.violations.append(
                    f"tid {task.tid} rip={addr:#x}: inside handler with "
                    f"empty sigret stack"
                )
        elif layout.CODE_BASE <= addr < self.app_end:
            if depth != 0:
                self.violations.append(
                    f"tid {task.tid} rip={addr:#x}: sigret stack depth "
                    f"{depth} in main app code"
                )
        xdepth = gsrel.xstack_depth(mem, gs)
        if not 0 <= xdepth <= gsrel.XSTACK_DEPTH:
            self.violations.append(
                f"tid {task.tid} rip={addr:#x}: xstate depth {xdepth}"
            )


def _probe_boundaries(tool) -> list[int]:
    windows = lazypoline_windows(tool)
    out: list[int] = []
    for name in PROBE_WINDOWS:
        w = windows[name]
        out.extend(instruction_boundaries(tool.blobs.code, 0, w.start, w.end))
    return out


def _run_with_trigger(target: int, seed: int):
    machine = Machine()
    image = build_two_thread_guest()
    process = machine.load(image)
    tool = Lazypoline._install(machine, process, TraceInterposer())
    windows = lazypoline_windows(tool)
    watch = WindowWatch(
        [(windows[n].start, windows[n].end) for n in PROBE_WINDOWS]
    )
    invariants = GsInvariantWatch(
        handler_range=(image.symbols["handlers"], image.symbols["handlers_end"]),
        app_end=image.symbols["act1"],
    )
    machine.kernel.cpu.add_hook(watch)
    machine.kernel.cpu.add_hook(invariants)
    policy = ExplorerPolicy(
        seed,
        triggers=(
            SignalTrigger(target, SIGUSR2, arm_addr=image.symbols["armed"]),
        ),
    )
    machine.scheduler.policy = policy
    machine.run(
        until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
        max_instructions=600_000,
    )
    return machine, process, tool, policy, watch, invariants


def test_signal_at_every_boundary_two_threads():
    """Sweep all probed boundaries; assert full coverage + all invariants."""
    # a throwaway install just to learn the (VA-0, layout-stable) blob map
    probe_machine = Machine()
    probe = Lazypoline._install(
        probe_machine,
        probe_machine.load(build_two_thread_guest()),
        TraceInterposer(),
    )
    boundaries = _probe_boundaries(probe)
    assert len(boundaries) >= 30  # stub + slowpath + trampoline

    covered: set[int] = set()
    for idx, target in enumerate(boundaries):
        machine, process, tool, policy, watch, inv = _run_with_trigger(
            target, seed=idx
        )
        label = f"boundary {target:#x} (idx {idx})"
        assert not process.alive, f"{label}: guest never terminated"
        assert process.term_signal is None, (
            f"{label}: killed by signal {process.term_signal}"
        )
        assert process.exit_code == 0x11, (
            f"{label}: handler counts wrong, exit={process.exit_code:#x}"
        )
        assert policy.all_triggers_fired, f"{label}: trigger never fired"
        assert not inv.violations, f"{label}: {inv.violations[:3]}"
        # rewritten sites must hold exactly `call rax`; surviving app
        # syscall sites must still be pristine syscall bytes
        task = process.task
        for site in tool.rewritten:
            assert task.mem.read(site, 2, check=None) == CALL_RAX_BYTES, (
                f"{label}: rewritten site {site:#x} corrupt"
            )
        covered.add(target)

    assert covered == set(boundaries), (
        "boundaries never probed: "
        f"{[hex(b) for b in sorted(set(boundaries) - covered)]}"
    )


def test_window_watch_sees_stub_execution():
    """The coverage watch itself must observe stub instructions executing."""
    machine = Machine()
    image = build_two_thread_guest()
    process = machine.load(image)
    tool = Lazypoline._install(machine, process, TraceInterposer())
    windows = lazypoline_windows(tool)
    watch = WindowWatch([(windows["stub"].start, windows["stub"].end)])
    machine.kernel.cpu.add_hook(watch)
    machine.run(
        until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
        max_instructions=600_000,
    )
    assert process.exit_code == 0x1  # only SIGUSR1 fires without a trigger
    stub = windows["stub"]
    stub_bounds = set(
        instruction_boundaries(tool.blobs.code, 0, stub.start, stub.end)
    )
    executed = watch.covered_in(stub.start, stub.end)
    # the whole fast-path prologue/epilogue runs for every syscall; xsave
    # variants may skip the optional xstate block, so require the
    # non-optional majority rather than strict equality
    assert len(executed) >= len(stub_bounds) * 2 // 3
    assert executed <= stub_bounds


def test_rewritten_and_pristine_sites_consistent():
    """Rewritten sites hold `call rax`; untouched sites keep `syscall`."""
    machine = Machine()
    image = build_two_thread_guest()
    process = machine.load(image)
    tool = Lazypoline._install(machine, process, TraceInterposer())
    text = image.text_segments()[0]
    original_sites = {
        text.addr + off
        for off in range(len(text.data) - 1)
        if text.data[off:off + 2] == SYSCALL_BYTES
    }
    machine.run(
        until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
        max_instructions=600_000,
    )
    mem = process.task.mem
    # restrict to guest text: lazypoline also tracks its own blob-internal
    # syscall (the restorer's rt_sigreturn) below CODE_BASE
    rewritten = {s for s in tool.rewritten if s >= layout.CODE_BASE}
    assert rewritten, "no syscall site was ever rewritten"
    assert rewritten <= original_sites, "rewrote a non-syscall address"
    for site in original_sites:
        got = mem.read(site, 2, check=None)
        want = CALL_RAX_BYTES if site in rewritten else SYSCALL_BYTES
        assert got == want, (
            f"site {site:#x}: bytes {got!r}, expected {want!r} "
            f"({'rewritten' if site in rewritten else 'pristine'})"
        )
