"""Property-based lockstep equivalence: superblock tier vs single-step.

The superblock tier (``repro.cpu.superblock``) claims to be *invisible*:
for any guest, tiering on and off must produce bit-identical registers,
memory, stdout, per-thread syscall traces, retired-instruction totals and
simulated cycle counts.  Hypothesis generates adversarial guests — random
straight-line bodies over the full fused instruction set, conditional
skips (multiple block heads), self-modifying stores that patch upcoming
instructions *inside* the hot loop, signal handlers firing between
iterations, and random scheduler quanta (including quantum=1, where
blocks never fit the budget and the tier must stand down entirely) — and
the differential oracle checks every observable in lockstep.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings, strategies as st

from repro.arch.encode import Assembler
from repro.faults.oracle import differences, run_guest
from repro.kernel.syscalls.table import NR
from repro.mem import layout
from repro.loader.image import image_from_assembler

pytestmark = pytest.mark.superblock

# Registers the random body may clobber.  rbp is the loop counter (rcx is syscall-clobbered), rsi
# the scratch page, r12/r13/r15 the SMC machinery, r14 the signal page —
# all reserved.
POOL = ("rax", "rbx", "rdx", "r8")

SIGUSR1 = 10


def _nop_byte() -> int:
    a = Assembler()
    a.nop()
    return a.assemble()[0]


def _patch_words() -> tuple[int, int]:
    """Two 8-byte code images for the SMC patch site: all-nops, and
    ``inc rax`` padded with nops.  Alternating them every iteration makes
    the hot loop rewrite its own upcoming instructions each pass."""
    nop = _nop_byte()
    a = Assembler()
    a.inc("rax")
    inc = a.assemble()
    p1 = bytes([nop]) * 8
    p2 = (inc + bytes([nop]) * 8)[:8]
    return int.from_bytes(p1, "little"), int.from_bytes(p2, "little")


# One random body instruction: (kind, reg, reg2, imm).
_op = st.tuples(
    st.integers(min_value=0, max_value=17),
    st.integers(min_value=0, max_value=len(POOL) - 1),
    st.integers(min_value=0, max_value=len(POOL) - 1),
    st.integers(min_value=0, max_value=0xFFFF),
)


def _emit_op(a: Assembler, k: int, op, skips: list[int]) -> None:
    kind, ri, rj, imm = op
    rd, rs = POOL[ri], POOL[rj]
    if kind == 0:
        a.add(rd, rs)
    elif kind == 1:
        a.sub(rd, rs)
    elif kind == 2:
        a.xor(rd, rs)
    elif kind == 3:
        a.and_(rd, rs)
    elif kind == 4:
        a.or_(rd, rs)
    elif kind == 5:
        a.imul(rd, rs)
    elif kind == 6:
        a.mov(rd, rs)
    elif kind == 7:
        a.mov_imm(rd, imm)
    elif kind == 8:
        a.addi(rd, imm)
    elif kind == 9:
        a.subi(rd, imm)
    elif kind == 10:
        a.xori(rd, imm)
    elif kind == 11:
        a.shl(rd, imm & 7)
    elif kind == 12:
        a.shr(rd, imm & 7)
    elif kind == 13:
        a.inc(rd)
    elif kind == 14:
        a.dec(rd)
    elif kind == 15:
        # conditional forward skip: a second block head mid-body
        label = f"skip_{k}"
        a.cmpi(rd, imm)
        a.jl(label)
        a.inc(rs)
        a.label(label)
        skips.append(k)
    elif kind == 16:
        a.store("rsi", (imm & 0x1F8), rd)
        a.load(rs, "rsi", (imm & 0x1F8))
    elif kind == 17:
        a.push(rd)
        a.pop(rs)


def build_guest(ops, iters: int, smc: bool, signal: bool):
    """A hot loop of the random body, optionally self-patching and
    optionally raising SIGUSR1 at itself every iteration."""
    p1, p2 = _patch_words()
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    # scratch RW page
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("rsi", "rax")
    if smc:
        # the loop patches its own code: make the code page writable
        a.mov_imm("rdi", layout.CODE_BASE)
        a.mov_imm("rdx", 7)
        a.push("rsi")
        a.mov_imm("rsi", 4096)
        a.mov_imm("rax", NR["mprotect"])
        a.syscall()
        a.pop("rsi")
        a.mov_imm("r12", "patch")
        a.mov_imm("r13", p1)
        a.mov_imm("r15", p1 ^ p2)
    if signal:
        a.mov("r14", "rsi")
        a.mov_imm("rdi", SIGUSR1)
        a.push("rsi")
        a.mov_imm("rsi", "act")
        a.mov_imm("rdx", 0)
        a.mov_imm("r10", 8)
        a.mov_imm("rax", NR["rt_sigaction"])
        a.syscall()
        a.pop("rsi")
        a.mov_imm("rax", NR["getpid"])
        a.syscall()
        a.store("r14", 0x200, "rax")
        a.mov_imm("rax", NR["gettid"])
        a.syscall()
        a.store("r14", 0x208, "rax")
    for i, name in enumerate(POOL):
        a.mov_imm(name, i + 1)
    a.mov_imm("rbp", iters)
    a.label("loop")
    skips: list[int] = []
    for k, op in enumerate(ops):
        _emit_op(a, k, op, skips)
    if smc:
        # overwrite the upcoming patch site, alternating nops / inc rax
        a.store("r12", 0, "r13")
        a.xor("r13", "r15")
        a.label("patch")
        for _ in range(8):
            a.nop()
    if signal:
        a.load("rdi", "r14", 0x200)
        a.push("rsi")
        a.load("rsi", "r14", 0x208)
        a.mov_imm("rdx", SIGUSR1)
        a.mov_imm("rax", NR["tgkill"])
        a.syscall()
        a.pop("rsi")
    a.subi("rbp", 1)
    a.cmpi("rbp", 0)
    a.jnz("loop")
    # dump final register + flag state to the scratch page, write it out
    for i, name in enumerate(POOL):
        a.store("rsi", 8 * i, name)
    a.mov_imm("rbx", 0)
    a.jnz("no_zf")
    a.mov_imm("rbx", 1)
    a.label("no_zf")
    a.store("rsi", 8 * len(POOL), "rbx")
    a.mov_imm("rbx", 0)
    a.jge("no_lt")
    a.mov_imm("rbx", 1)
    a.label("no_lt")
    a.store("rsi", 8 * len(POOL) + 8, "rbx")
    a.mov_imm("rdi", 1)
    a.mov_imm("rdx", 8 * len(POOL) + 16)
    a.push("rsi")
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    if signal:
        a.label("handler")
        a.load("rdx", "r14", 0x210)
        a.inc("rdx")
        a.store("r14", 0x210, "rdx")
        a.ret()
        a.align(8, fill=0)
        a.label("act")
        a.dq("handler")
        a.dq(0)
        a.dq(0)
        a.dq(0)
    return image_from_assembler("sb-prop", a, entry="_start")


def _lockstep(image_builder, quantum: int) -> None:
    reports = {
        sb: run_guest(
            image_builder,
            None,
            machine_opts={"superblocks": sb, "quantum": quantum},
        )
        for sb in (False, True)
    }
    diffs = differences(reports[False], reports[True], compare_cycles=True)
    assert not diffs, diffs
    assert not reports[True].crashed


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=10),
    iters=st.integers(min_value=18, max_value=48),
    quantum=st.sampled_from([1, 2, 3, 5, 7, 13, 31, 64]),
)
def test_lockstep_straightline(ops, iters, quantum):
    _lockstep(lambda: build_guest(ops, iters, False, False), quantum)


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=6),
    iters=st.integers(min_value=18, max_value=40),
    quantum=st.sampled_from([1, 5, 13, 64]),
)
def test_lockstep_self_modifying(ops, iters, quantum):
    """The hot loop rewrites its own upcoming instructions every pass."""
    _lockstep(lambda: build_guest(ops, iters, True, False), quantum)


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(_op, min_size=1, max_size=6),
    iters=st.integers(min_value=18, max_value=40),
    quantum=st.sampled_from([1, 5, 13, 64]),
)
def test_lockstep_with_signals(ops, iters, quantum):
    """SIGUSR1 delivered every iteration: handler entries/exits interleave
    with block dispatch at every scheduler quantum."""
    _lockstep(lambda: build_guest(ops, iters, False, True), quantum)


def test_hot_loop_actually_tiers_up():
    """Sanity for the whole suite: the generated guests do reach tier 2
    (otherwise every lockstep assertion above is vacuous)."""
    from repro.kernel.machine import Machine

    ops = [(0, 0, 1, 0), (2, 1, 2, 0), (8, 3, 0, 7)]
    machine = Machine()
    proc = machine.load(build_guest(ops, 48, False, False))
    machine.run_process(proc)
    stats = machine.superblock_stats()
    assert stats["enabled"]
    assert stats["compiled"] >= 1
    assert stats["block_runs"] >= 16
    assert proc.exit_code == 0


def test_smc_guest_invalidates_blocks():
    """The self-patching guest must force real block invalidations."""
    from repro.kernel.machine import Machine

    ops = [(0, 0, 1, 0)]
    machine = Machine()
    proc = machine.load(build_guest(ops, 48, True, False))
    machine.run_process(proc)
    stats = machine.superblock_stats()
    assert stats["enabled"]
    assert stats["invalidated"] >= 1
    assert proc.exit_code == 0
