"""The text assembler front-end."""

from __future__ import annotations

import pytest

from repro.arch.asmtext import assemble_text, parse_operand, Gpr, Imm, LabelRef, Mem, GsMem, Xmm
from repro.arch.encode import Assembler
from repro.errors import AssemblerError
from repro.kernel.machine import Machine
from repro.loader.image import image_from_assembler


# ----------------------------------------------------------------- operands
def test_parse_registers():
    assert parse_operand("rax") == Gpr(0)
    assert parse_operand("R15") == Gpr(15)
    assert parse_operand("xmm3") == Xmm(3)


def test_parse_immediates():
    assert parse_operand("42") == Imm(42)
    assert parse_operand("0x10") == Imm(16)
    assert parse_operand("-5") == Imm(-5)


def test_parse_labels():
    assert parse_operand("_start") == LabelRef("_start")
    assert parse_operand("msg.1") == LabelRef("msg.1")


def test_parse_memory():
    assert parse_operand("[rbx]") == Mem(3, 0)
    assert parse_operand("[rsp + 8]") == Mem(4, 8)
    assert parse_operand("[r12-0x10]") == Mem(12, -16)
    assert parse_operand("gs:[24]") == GsMem(24)


def test_parse_garbage_rejected():
    with pytest.raises(AssemblerError):
        parse_operand("[nope+4]")
    with pytest.raises(AssemblerError):
        parse_operand("12abc")


# ------------------------------------------------------- text == builder
def _builder_equiv(text: str, build) -> None:
    a = Assembler(base=0x1000)
    build(a)
    b = assemble_text(text, base=0x1000)
    assert b.assemble() == a.assemble()


def test_mov_forms_match_builder():
    _builder_equiv(
        """
        mov rax, 39
        mov rbx, rax
        mov rcx, [rbx+8]
        mov [rbx+8], rcx
        mov rdx, gs:[24]
        mov gs:[24], rdx
        """,
        lambda a: (
            a.mov_imm("rax", 39), a.mov("rbx", "rax"),
            a.load("rcx", "rbx", 8), a.store("rbx", 8, "rcx"),
            a.gsload("rdx", 24), a.gsstore(24, "rdx"),
        ),
    )


def test_alu_and_control_flow_match_builder():
    _builder_equiv(
        """
        loop:
            add rax, rbx
            sub rax, 5
            cmp rax, 0
            jnz loop
            call loop
            jmp loop
            ret
        """,
        lambda a: (
            a.label("loop"), a.add("rax", "rbx"), a.subi("rax", 5),
            a.cmpi("rax", 0), a.jnz("loop"), a.call("loop"),
            a.jmp("loop"), a.ret(),
        ),
    )


def test_vector_and_system_match_builder():
    _builder_equiv(
        """
        movq xmm0, rax
        punpcklqdq xmm0, xmm0
        movups [rsp+16], xmm0
        movups xmm1, [rsp+16]
        xsave [rsp+64]
        xrstor [rsp+64]
        syscall
        """,
        lambda a: (
            a.movq_xg(0, 0), a.punpcklqdq(0, 0),
            a.movups_store("rsp", 16, 0), a.movups_load(1, "rsp", 16),
            a.xsave("rsp", 64), a.xrstor("rsp", 64), a.syscall(),
        ),
    )


def test_gs_and_pkey_forms():
    _builder_equiv(
        """
        movb gs:[0], r11
        movb r11, gs:[0]
        movb gs:[0], gs:[8]
        jmp gs:[16]
        wrpkru gs:[24]
        rdpkru rax
        wrpkru rax
        """,
        lambda a: (
            a.gsstore8(0, "r11"), a.gsload8("r11", 0), a.gscopy8(0, 8),
            a.gsjmp(16), a.gswrpkru(24), a.rdpkru("rax"), a.wrpkru("rax"),
        ),
    )


def test_directives():
    asm = assemble_text(
        """
        data:
            .ascii "hi"
            .asciz "a\\n"
            .byte 0x90, 1
            .align 8
            .quad 0x1122, data
        """,
        base=0x2000,
    )
    code = asm.assemble()
    assert code.startswith(b"hia\n\x00\x90\x01")
    aligned = (7 + 7) & ~7
    assert code[aligned : aligned + 8] == (0x1122).to_bytes(8, "little")
    assert code[aligned + 8 : aligned + 16] == (0x2000).to_bytes(8, "little")


def test_comments_and_label_on_same_line():
    asm = assemble_text(
        """
        start: nop   ; comment with, commas
        # full-line comment
        nop
        """
    )
    assert asm.assemble() == b"\x90\x90"


def test_string_with_semicolon_kept():
    asm = assemble_text('.ascii "a;b"')
    assert asm.assemble() == b"a;b"


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError, match="line 2"):
        assemble_text("nop\nbogus rax\n")


def test_bad_operand_count():
    with pytest.raises(AssemblerError):
        assemble_text("push rax, rbx")


# ---------------------------------------------------------------- end to end
def test_text_program_runs(machine: Machine):
    asm = assemble_text(
        """
        _start:
            mov rax, 1          ; write
            mov rdi, 1
            mov rsi, msg
            mov rdx, 6
            syscall
            mov rax, 231        ; exit_group
            mov rdi, 7
            syscall
        msg:
            .ascii "howdy\\n"
        """,
        base=0x400000,
    )
    image = image_from_assembler("textprog", asm, entry="_start")
    process = machine.load(image)
    code = machine.run_process(process)
    assert code == 7
    assert process.stdout == b"howdy\n"


def test_text_program_under_lazypoline(machine: Machine):
    from repro.interpose.api import TraceInterposer
    from repro.interpose.lazypoline import Lazypoline

    asm = assemble_text(
        """
        _start:
            mov rax, 39
            syscall
            mov rax, 231
            mov rdi, 0
            syscall
        """,
        base=0x400000,
    )
    image = image_from_assembler("t", asm, entry="_start")
    process = machine.load(image)
    tracer = TraceInterposer()
    Lazypoline._install(machine, process, tracer)
    machine.run_process(process)
    assert tracer.names == ["getpid", "exit_group"]
