"""Property-based tests: CPU arithmetic matches two's-complement semantics."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.arch.encode import Assembler
from repro.arch.registers import MASK64, to_signed, to_unsigned
from repro.cpu.core import BareTask, CPU, NullEnvironment
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, Perm

CODE = 0x1000
STACK = 0x8000

u64 = st.integers(min_value=0, max_value=MASK64)


def run_snippet(build, init_regs=()):
    mem = AddressSpace()
    a = Assembler(base=CODE)
    build(a)
    a.hlt()
    code = a.assemble()
    size = (len(code) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    mem.map(CODE, size, Perm.RX)
    mem.write(CODE, code, check=None)
    mem.map(STACK, PAGE_SIZE, Perm.RW)
    env = NullEnvironment()
    cpu = CPU(env)
    task = BareTask(mem)
    task.regs.rip = CODE
    task.regs.write_name("rsp", STACK + PAGE_SIZE)
    for name, value in init_regs:
        task.regs.write_name(name, value)
    for _ in range(10_000):
        if env.halted:
            break
        cpu.step(task)
    assert env.halted
    return task.regs


@given(u64, u64)
def test_add_matches_model(a, b):
    regs = run_snippet(lambda asm: asm.add("rax", "rbx"),
                       [("rax", a), ("rbx", b)])
    assert regs.read_name("rax") == (a + b) & MASK64


@given(u64, u64)
def test_sub_matches_model(a, b):
    regs = run_snippet(lambda asm: asm.sub("rax", "rbx"),
                       [("rax", a), ("rbx", b)])
    assert regs.read_name("rax") == (a - b) & MASK64


@given(u64, u64)
def test_imul_matches_signed_model(a, b):
    regs = run_snippet(lambda asm: asm.imul("rax", "rbx"),
                       [("rax", a), ("rbx", b)])
    assert regs.read_name("rax") == (to_signed(a) * to_signed(b)) & MASK64


@given(u64, u64)
def test_xor_and_or(a, b):
    regs = run_snippet(
        lambda asm: (asm.mov("rcx", "rax"), asm.xor("rcx", "rbx"),
                     asm.mov("rdx", "rax"), asm.and_("rdx", "rbx"),
                     asm.or_("rax", "rbx")),
        [("rax", a), ("rbx", b)],
    )
    assert regs.read_name("rcx") == a ^ b
    assert regs.read_name("rdx") == a & b
    assert regs.read_name("rax") == a | b


@given(u64, st.integers(min_value=0, max_value=63))
def test_shifts_match_model(a, count):
    regs = run_snippet(
        lambda asm: (asm.mov("rbx", "rax"), asm.shl("rax", count),
                     asm.shr("rbx", count)),
        [("rax", a)],
    )
    assert regs.read_name("rax") == (a << count) & MASK64
    assert regs.read_name("rbx") == a >> count


@given(u64, u64)
def test_cmp_sets_signed_flags(a, b):
    regs = run_snippet(lambda asm: asm.cmp("rax", "rbx"),
                       [("rax", a), ("rbx", b)])
    assert regs.zf == (to_signed(a) == to_signed(b))
    assert regs.lt == (to_signed(a) < to_signed(b))


@given(u64)
def test_push_pop_roundtrip(value):
    regs = run_snippet(
        lambda asm: (asm.push("rax"), asm.mov_imm("rax", 0), asm.pop("rbx")),
        [("rax", value)],
    )
    assert regs.read_name("rbx") == value


@given(u64, st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_addi_sign_extends(a, imm):
    regs = run_snippet(lambda asm: asm.addi("rax", imm), [("rax", a)])
    assert regs.read_name("rax") == (a + imm) & MASK64


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_signed_conversions_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


@given(u64, st.integers(min_value=0, max_value=PAGE_SIZE - 16))
def test_store_load_roundtrip(value, offset):
    regs = run_snippet(
        lambda asm: (asm.mov_imm("rbx", STACK), asm.store("rbx", offset, "rax"),
                     asm.load("rcx", "rbx", offset)),
        [("rax", value)],
    )
    assert regs.read_name("rcx") == value
