"""The unified workload runner: one entry point, one setup path.

Covers the :func:`run_workload` protocol itself (registry, option
validation, the :class:`Workload` protocol), the shared
:func:`attach_mechanism` path, and that the legacy entry points
(``run_scaled``, ``measure_ring``, ``measure_cycles_per_syscall``) are
now thin wrappers producing the same numbers.
"""

from __future__ import annotations

import pytest

from repro.kernel.machine import Machine
from repro.workloads.runner import (
    RunContext,
    Workload,
    attach_mechanism,
    register_workload,
    run_workload,
    workload_names,
)


# ----------------------------------------------------------------- registry
def test_builtin_workloads_registered():
    assert {"webserver", "ringbench", "microbench"} <= set(workload_names())


def test_unknown_workload_is_an_error():
    with pytest.raises(ValueError, match="unknown workload.*webserver"):
        run_workload("nope")


def test_unknown_option_is_an_error():
    with pytest.raises(TypeError, match="unknown options.*typo"):
        run_workload("microbench", iterations=4, typo=1)


def test_custom_workload_registration():
    class Probe:
        name = "probe"

        def run(self, ctx):
            return {"workload": self.name, "echo": ctx.option("echo")}

    assert isinstance(Probe(), Workload)
    register_workload(Probe())
    try:
        assert run_workload("probe", echo=42) == {
            "workload": "probe", "echo": 42,
        }
    finally:
        from repro.workloads import runner

        runner._WORKLOADS.pop("probe", None)


# ---------------------------------------------------------- attach_mechanism
def _hello():
    from repro.faults.corpus import CORPUS

    machine = Machine()
    process = machine.load(CORPUS["syscall_loop"].build())
    return machine, process


def test_attach_mechanism_baseline_attaches_nothing():
    machine, process = _hello()
    for name in (None, "baseline", "none"):
        assert attach_mechanism(machine, process, name) is None
    assert process.task.seccomp_filters == []
    assert process.task.sud is None


def test_attach_mechanism_rejects_opts_without_tool():
    machine, process = _hello()
    with pytest.raises(ValueError, match="without a tool"):
        attach_mechanism(machine, process, None,
                         tool_opts={"degrade_policy": "x"})


def test_attach_mechanism_sud_enabled_allow():
    machine, process = _hello()
    assert attach_mechanism(machine, process, "sud_enabled_allow") is None
    assert process.task.sud is not None
    assert machine.run_process(process) == 0


def test_attach_mechanism_lazypoline_ablations():
    from repro.arch.registers import XComponent

    machine, process = _hello()
    tool = attach_mechanism(machine, process, "lazypoline_noxstate")
    assert tool.config.preserve_xstate == XComponent.none()
    machine2, process2 = _hello()
    tool2 = attach_mechanism(machine2, process2, "lazypoline_nosud")
    assert not tool2.config.enable_sud


def test_attach_mechanism_registry_tools():
    machine, process = _hello()
    tool = attach_mechanism(machine, process, "seccomp_bpf")
    assert process.task.seccomp_filters
    assert tool is not None


# ----------------------------------------------------------- legacy wrappers
def test_run_scaled_is_a_thin_wrapper():
    from repro.workloads.webserver import SERVERS, run_scaled

    old = run_scaled(SERVERS["nginx"], cores=1, requests=40, warmup=4)
    new = run_workload("webserver", server="nginx", cores=1,
                       requests=40, warmup=4)
    assert old == new


def test_measure_ring_through_runner():
    row = run_workload("ringbench", tool="lazypoline", enters=8, batch=4)
    assert row["ring_enters"] == 8
    assert row["clock"] > 0


def test_microbench_through_runner():
    base = run_workload("microbench", iterations=50)
    lazy = run_workload("microbench", tool="lazypoline", iterations=50)
    assert lazy["clock"] > base["clock"] > 0


def test_results_are_json_serializable():
    import json

    row = run_workload("webserver", requests=30, warmup=3)
    assert json.loads(json.dumps(row)) == row
    assert row["requests_per_sec"] > 0
    assert row["latency_p99_cycles"] >= row["latency_p50_cycles"] > 0


def test_machine_opts_reach_the_machine():
    fast = run_workload(
        "microbench", iterations=50,
        machine_opts={"superblocks": False},
    )
    assert fast["clock"] > 0


def test_run_context_option_pop():
    ctx = RunContext(tool=None, cores=1, batched=False, tracer=None,
                     smp_seed=0, interposer=None, tool_opts=None,
                     machine_opts=None, options={"a": 1})
    assert ctx.option("a") == 1
    assert ctx.option("b", "dflt") == "dflt"
    ctx.reject_unknown_options("t")  # empty now: no raise
    ctx.options["x"] = 2
    with pytest.raises(TypeError, match="unknown options"):
        ctx.reject_unknown_options("t")
