"""SudTool / SeccompUserTool / PtraceTool behaviour."""

from __future__ import annotations

import pytest

from repro.interpose.api import DenyListInterposer, TraceInterposer
from repro.interpose.ptrace_tool import PtraceTool
from repro.interpose.seccomp_user_tool import SeccompUserTool
from repro.interpose.sud_tool import SudTool
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.signals import SIGUSR1
from repro.kernel.sud import SELECTOR_BLOCK
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image

SIGNAL_TOOLS = [SudTool, SeccompUserTool]
ALL_TOOLS = [SudTool, SeccompUserTool, PtraceTool]


@pytest.mark.parametrize("Tool", ALL_TOOLS, ids=lambda t: t.__name__)
def test_trace_and_program_correctness(Tool, machine):
    proc = machine.load(hello_image(b"sig\n", exit_code=8))
    tr = TraceInterposer()
    Tool._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 8
    assert proc.stdout == b"sig\n"
    assert "write" in tr.names


@pytest.mark.parametrize("Tool", SIGNAL_TOOLS, ids=lambda t: t.__name__)
def test_result_patched_into_context(Tool, machine):
    def fake(ctx):
        if ctx.name == "getpid":
            ctx.do_syscall()
            return 77
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    proc = machine.load(finish(a))
    Tool._install(machine, proc, fake)
    assert machine.run_process(proc) == 77


@pytest.mark.parametrize("Tool", SIGNAL_TOOLS, ids=lambda t: t.__name__)
def test_deny_interposer(Tool, machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o755)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("p")
    a.db(b"/deny\x00")
    proc = machine.load(finish(a))
    Tool._install(machine, proc, DenyListInterposer({NR["mkdir"]: errno.EPERM}))
    assert machine.run_process(proc) == errno.EPERM
    assert not machine.fs.exists("/deny")


@pytest.mark.parametrize("Tool", SIGNAL_TOOLS, ids=lambda t: t.__name__)
def test_nested_app_sigreturn_emulated(Tool, machine):
    """An app signal handler under a SIGSYS-based tool: its sigreturn is
    itself trapped and must be emulated against the outer frame."""
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rbx", 0x42)  # must survive the whole signal round trip
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    a.cmpi("rbx", 0x42)
    a.jnz("bad")
    emit_syscall(a, "write", 1, "m", 2)
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("handler")
    emit_syscall(a, "getpid")  # a syscall inside the handler
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m")
    a.db(b"M\n")
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    tool = Tool._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"M\n"
    assert "rt_sigreturn" in tr.names
    assert tr.count("getpid") == 2  # main + handler
    assert tool.sigsys_count >= 5


def test_sud_tool_selector_is_block_outside_handler(machine):
    proc = machine.load(hello_image())
    tool = SudTool._install(machine, proc)
    machine.run_process(proc)
    assert proc.task.mem.read_u8(tool.selector_addr, check=None) == SELECTOR_BLOCK


def test_sud_tool_rearms_fork_child(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    emit_syscall(a, "getpid")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    SudTool._install(machine, proc, tr)
    assert machine.run_process(proc) == 0
    child = [t for t in machine.kernel.tasks.values() if t.parent is proc.task][0]
    assert child.sud is not None  # re-armed despite the kernel clearing it
    assert tr.count("getpid") >= 1  # the child's getpid was interposed


def test_seccomp_user_filters_survive_in_child_automatically(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    emit_syscall(a, "getpid")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    SeccompUserTool._install(machine, proc, tr)
    assert machine.run_process(proc) == 0
    child = [t for t in machine.kernel.tasks.values() if t.parent is proc.task][0]
    assert child.seccomp_filters  # inherited (Linux semantics)
    assert tr.count("getpid") >= 1


# -------------------------------------------------------------------- ptrace
def test_ptrace_retval_modification(machine):
    def fake(ctx):
        if ctx.name == "getpid":
            return 123
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    proc = machine.load(finish(a))
    PtraceTool._install(machine, proc, fake)
    assert machine.run_process(proc) == 123


def test_ptrace_memory_access_charged(machine):
    seen = []

    def peek(ctx):
        if ctx.name == "write":
            seen.append(ctx.read_cstr(ctx.args[1], 16))
        return ctx.do_syscall()

    proc = machine.load(hello_image(b"pk\n"))
    before_costs = machine.clock
    PtraceTool._install(machine, proc, peek)
    machine.run_process(proc)
    assert seen and seen[0].startswith(b"pk")
    assert machine.clock > before_costs


def test_ptrace_is_dramatically_slower(machine):
    """ptrace costs context switches per stop: visible even in tiny runs."""

    def run(tool: bool) -> float:
        m = Machine()
        p = m.load(hello_image())
        if tool:
            PtraceTool._install(m, p, TraceInterposer())
        m.run_process(p)
        return m.clock

    assert run(True) > 2.5 * run(False)


def test_ptrace_skip_syscall(machine):
    from repro.kernel.ptrace import PtraceTracer, attach

    class Skipper(PtraceTracer):
        def on_syscall_enter(self, ctl):
            sysno, _args = ctl.get_syscall_args()
            if sysno == NR["mkdir"]:
                ctl.skip_syscall((-errno.EPERM) & (1 << 64) - 1)

    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o755)
    emit_exit(a, 0)
    a.label("p")
    a.db(b"/skipme\x00")
    proc = machine.load(finish(a))
    attach(machine.kernel, proc.task, Skipper())
    machine.run_process(proc)
    assert not machine.fs.exists("/skipme")
