"""Differential check: the obs event stream is complete and exact.

Runs one guest under lazypoline with both views on: the trace-oracle
interposer (:class:`repro.faults.oracle.TidTracer`, the tool-level ground
truth) and the machine-wide obs tracer.  Every syscall the oracle saw must
appear exactly once as an obs ``syscall`` event — after filtering the
tool-internal dispatches (``mmap``/``munmap`` for the attach-time blob
mapping, ``mprotect`` for rewriting, ``rt_sigreturn`` for the slow path's
frame teardown) that the kernel-level view legitimately sees and the
tool-level view does not.  Rewrite events must cover exactly
the executed syscall sites.
"""

from __future__ import annotations

import pytest

from repro.faults.oracle import TidTracer
from repro.interpose import attach
from repro.kernel.machine import Machine
from repro.obs import Tracer
from repro.obs import events as K

from tests.conftest import asm, emit_exit, emit_syscall, finish

pytestmark = pytest.mark.obs

#: Dispatches lazypoline issues for itself, invisible at tool level.
TOOL_INTERNAL = {"mmap", "munmap", "mprotect", "rt_sigreturn"}


def build_guest():
    """Five syscalls from four sites: loop (3x getpid), write, open, exit."""
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 3)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_syscall(a, "write", 1, "msg", 3)
    emit_syscall(a, "open", "missing", 0, 0)  # ENOENT: errors count too
    emit_exit(a, 0)
    a.label("msg")
    a.db(b"hi\n")
    a.label("missing")
    a.db(b"/nope\x00")
    return finish(a, "diff")


@pytest.fixture
def run():
    obs = Tracer()
    oracle = TidTracer()
    machine = Machine(tracer=obs)
    process = machine.load(build_guest())
    tool = attach(machine, process, "lazypoline", interposer=oracle)
    machine.run_process(process)
    return obs, oracle, tool, machine


def test_every_oracle_syscall_appears_exactly_once(run):
    obs, oracle, tool, machine = run
    observed = [
        (e.tid, e.data["name"])
        for e in obs.events
        if e.kind == K.SYSCALL and e.data["name"] not in TOOL_INTERNAL
    ]
    assert observed == oracle.events
    # And the guest's actual syscalls are what we expect, in order.
    assert [name for _, name in observed] == (
        ["getpid"] * 3 + ["write", "open", "exit_group"]
    )


def test_interposition_events_mirror_oracle(run):
    obs, oracle, tool, machine = run
    interposed = [
        (e.tid, e.data["name"])
        for e in obs.events
        if e.kind == K.INTERPOSITION
    ]
    # TidTracer doesn't emit interposition events itself; the sled-entry
    # count is the comparable machine-side signal.
    assert obs.counts[K.SLED_ENTER] == len(oracle.events)
    assert interposed == []  # oracle interposer, not TraceInterposer


def test_rewrite_events_match_executed_sites(run):
    obs, oracle, tool, machine = run
    rewrite_sites = {
        e.data["site"] for e in obs.events if e.kind == K.REWRITE
    }
    assert rewrite_sites == tool.rewritten
    assert set(obs.rewritten_sites) == tool.rewritten
    # One rewrite event per site: each site traps exactly once (§IV-A).
    assert obs.counts[K.REWRITE] == len(rewrite_sites)
    # Four distinct syscall sites in the guest.
    assert len(rewrite_sites) == 4


def test_error_returns_carry_errno(run):
    obs, oracle, tool, machine = run
    open_events = [
        e for e in obs.events
        if e.kind == K.SYSCALL and e.data["name"] == "open"
    ]
    assert len(open_events) == 1
    assert open_events[0].data["ret"] < 0
    assert open_events[0].data["errno"] > 0
