"""Pre-forked multi-worker web server (nginx's process model)."""

from __future__ import annotations

import pytest

from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.zpoline import Zpoline
from repro.kernel.machine import Machine
from repro.workloads.webserver import LIGHTTPD, NGINX, ServerWorkload
from repro.workloads.wrk import HEADER_SIZE, WrkClient


def _drive(machine, workload, requests: int, connections: int = 4):
    workload.run_until_listening()
    client = WrkClient(
        machine.kernel, 8080, connections=connections,
        response_size=workload.file_size,
    )
    client.start()
    machine.run(
        until=lambda: client.stats.completed >= requests,
        max_instructions=100_000_000,
    )
    return client


def test_two_workers_share_the_listener():
    machine = Machine()
    workload = ServerWorkload(machine, NGINX, file_size=2048, workers=2)
    client = _drive(machine, workload, requests=40)
    assert client.stats.completed >= 40
    assert client.stats.errors == 0
    tasks = list(machine.kernel.tasks.values())
    assert len(tasks) == 2
    # With keep-alive connections, whichever worker wins accept keeps the
    # connection (real prefork behaviour) — so only require that the work
    # got done and that every worker at least reached its event loop.
    assert all(t.insn_count > 50 for t in tasks)


def test_four_workers():
    machine = Machine()
    workload = ServerWorkload(machine, LIGHTTPD, file_size=512, workers=4)
    client = _drive(machine, workload, requests=60, connections=8)
    assert client.stats.completed >= 60
    assert len(machine.kernel.tasks) == 4


@pytest.mark.parametrize("Tool", [Lazypoline, Zpoline], ids=lambda t: t.__name__)
def test_workers_interposed_after_fork(Tool):
    machine = Machine()
    workload = ServerWorkload(machine, NGINX, file_size=1024, workers=2)
    tracer = TraceInterposer()
    Tool._install(machine, workload.process, tracer)
    client = _drive(machine, workload, requests=30)
    assert client.stats.completed >= 30
    assert client.stats.errors == 0
    assert tracer.count("sendfile") >= 30  # every response went through us
    if Tool is Lazypoline:
        children = [
            t for t in machine.kernel.tasks.values()
            if t is not workload.process.task
        ]
        assert children and all(t.sud is not None for t in children)


def test_prefork_bytes_are_correct():
    machine = Machine()
    workload = ServerWorkload(machine, NGINX, file_size=3000, workers=3)
    client = _drive(machine, workload, requests=30, connections=6)
    assert client.stats.bytes_received >= 30 * (HEADER_SIZE + 3000)
    assert client.stats.errors == 0
