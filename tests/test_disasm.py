"""Static disassembly — including its genuine failure modes (§II-B)."""

from __future__ import annotations

from repro.arch.disasm import (
    find_syscall_sites,
    linear_sweep,
    sweep_syscall_addresses,
)
from repro.arch.encode import Assembler
from repro.arch.isa import Mnemonic


def test_sweep_decodes_clean_code():
    a = Assembler(base=0x100)
    a.mov_imm("rax", 39)
    a.syscall()
    a.ret()
    entries = linear_sweep(a.assemble(), base=0x100)
    assert [e.instruction.mnemonic for e in entries] == [
        Mnemonic.MOV_IMM64,
        Mnemonic.SYSCALL,
        Mnemonic.RET,
    ]
    assert entries[1].address == 0x105


def test_sweep_finds_syscall_addresses():
    a = Assembler(base=0x200)
    a.syscall()
    a.nop()
    a.sysenter()
    assert sweep_syscall_addresses(a.assemble(), 0x200) == [0x200, 0x203]


def test_sweep_reports_undecodable_bytes_as_data():
    code = b"\x90" + b"\x06" + b"\x90"  # 0x06 is not a valid opcode
    entries = linear_sweep(code)
    assert [e.is_data for e in entries] == [False, True, False]


def test_sweep_desynchronises_on_embedded_data():
    """Data in the text section shifts decoding: a real syscall can be
    swallowed by a bogus instruction decoded out of data bytes — the
    classic rewriting hazard."""
    a = Assembler(base=0x300)
    a.jmp("code")  # real control flow skips the data
    # Eight data bytes that decode as the *prefix* of a 10-byte mov: the
    # bogus instruction's immediate swallows the real syscall that follows.
    a.db(b"\x48\xb8" + b"\x00" * 6)
    a.label("code")
    a.syscall()
    code = a.assemble()
    # Ground truth: there IS a syscall instruction at `code`.
    true_site = a.address_of("code")
    assert code[true_site - 0x300 : true_site - 0x300 + 2] == b"\x0f\x05"
    # The sweep, desynchronised by the embedded data, misses it.
    assert true_site not in sweep_syscall_addresses(code, 0x300)


def test_bytescan_finds_syscalls_inside_immediates():
    """The byte-level scan reports a false positive inside a mov imm64 —
    rewriting it would corrupt the constant."""
    a = Assembler(base=0x400)
    # Little-endian bytes of this constant contain a consecutive 0F 05 pair.
    a.mov_imm("rax", 0x1122_050F_3344_5566)
    a.ret()
    code = a.assemble()
    sites = find_syscall_sites(code, 0x400)
    assert len(sites) == 1
    # ...and it is NOT at an instruction boundary.
    assert sites[0] != 0x400


def test_bytescan_never_misses_a_real_syscall():
    a = Assembler(base=0x500)
    a.jmp("code")
    a.db(b"\x49")
    a.label("code")
    a.mov_imm("r8", 1)
    a.syscall()
    code = a.assemble()
    true_site = a.address_of("code") + 10
    assert true_site in find_syscall_sites(code, 0x500)


def test_bytescan_finds_sysenter_too():
    a = Assembler(base=0x600)
    a.sysenter()
    assert find_syscall_sites(a.assemble(), 0x600) == [0x600]
