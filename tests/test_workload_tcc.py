"""The tcc-style JIT workload itself (mechanism-independent checks)."""

from __future__ import annotations

from repro.arch.decode import decode_one
from repro.arch.isa import Mnemonic
from repro.kernel.syscalls.table import NR
from repro.mem.pages import Perm
from repro.workloads import tcc


def test_jit_code_decodes_to_getpid_sequence():
    insn = decode_one(tcc.JIT_CODE, 0)
    assert insn.mnemonic is Mnemonic.MOV_IMM64
    assert insn.operands == (0, NR["getpid"])  # rax = __NR_getpid
    off = insn.length
    insn = decode_one(tcc.JIT_CODE, off)
    assert insn.mnemonic is Mnemonic.SYSCALL
    off += insn.length
    insn = decode_one(tcc.JIT_CODE, off)
    assert insn.mnemonic is Mnemonic.RET


def test_jit_code_is_exactly_one_store(machine):
    assert len(tcc.JIT_CODE) == 8  # emitted with a single 64-bit store


def test_workload_runs_natively(machine):
    tcc.setup_fs(machine)
    proc = machine.load(tcc.build_tcc_image())
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"ok\n"
    # the JIT-ed getpid's result landed in r13
    assert proc.task.regs.read_name("r13") == proc.pid


def test_jit_page_is_rwx(machine):
    tcc.setup_fs(machine)
    proc = machine.load(tcc.build_tcc_image())
    machine.run_process(proc)
    jit_page = proc.task.regs.read_name("r12")
    assert proc.task.mem.perm_at(jit_page) == Perm.RWX


def test_static_image_contains_no_getpid_site(machine):
    """The whole point: the getpid syscall instruction does not exist in
    the static image — only the JIT creates it."""
    from repro.arch.disasm import sweep_syscall_addresses

    image = tcc.build_tcc_image()
    text = image.segments[0]
    sites = sweep_syscall_addresses(text.data, text.addr)
    assert sites  # the compiler-phase syscalls are there...
    # ...but none of them is a getpid: check by looking at the preceding
    # mov rax, imm at each site in the static code
    machine_codes = text.data
    for site in sites:
        off = site - text.addr
        window = machine_codes[max(0, off - 10):off]
        assert bytes((0xB8, NR["getpid"])) not in window


def test_source_file_is_actually_read(machine):
    tcc.setup_fs(machine)
    proc = machine.load(tcc.build_tcc_image())
    machine.kernel.trace_syscalls = True
    machine.run_process(proc)
    reads = [
        entry for entry in machine.kernel.syscall_log if entry[1] == NR["read"]
    ]
    assert reads and reads[0][3] == len(tcc.SOURCE_TEXT)
