"""The observability layer: event stream, aggregates, exporters."""

from __future__ import annotations

import json

import pytest

from repro.interpose import attach
from repro.kernel.machine import Machine
from repro.obs import events as K
from repro.obs import (
    Tracer,
    convergence_curve,
    export_chrome,
    export_jsonl,
    path_ratio,
    render_strace,
)

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image

pytestmark = pytest.mark.obs


def _traced_run(tool: str = "lazypoline", image=None):
    tracer = Tracer()
    machine = Machine(tracer=tracer)
    process = machine.load(image if image is not None else hello_image())
    attach(machine, process, tool)
    machine.run_process(process)
    return machine, tracer


# ------------------------------------------------------------------ the stream
def test_event_kinds_present_under_lazypoline():
    machine, tracer = _traced_run("lazypoline")
    kinds = set(tracer.counts)
    assert {
        K.SYSCALL, K.SIGSYS_TRAP, K.REWRITE, K.SLED_ENTER,
        K.SLICE_START, K.SLICE_END, K.CTX_SWITCH,
    } <= kinds
    # Every event kind recorded is a known kind.
    assert kinds <= set(K.ALL_KINDS)


def test_timestamps_monotonic_and_seq_dense():
    machine, tracer = _traced_run("lazypoline")
    assert len(tracer.events) > 10
    last_ts = -1
    for i, event in enumerate(tracer.events):
        assert event.seq == i
        assert event.ts >= last_ts
        last_ts = event.ts


def test_syscall_aggregates_and_histogram():
    machine, tracer = _traced_run("lazypoline")
    table = tracer.syscall_table()
    names = {agg.name for agg in table}
    assert {"write", "exit_group"} <= names
    write = next(agg for agg in table if agg.name == "write")
    assert write.calls == 1
    assert write.cycles > 0
    assert write.histogram.n == write.calls
    assert write.histogram.total == write.cycles
    assert write.cycles_per_call == write.cycles


def test_path_ratio_and_coverage():
    machine, tracer = _traced_run("lazypoline")
    slow, fast, fraction = path_ratio(tracer)
    # hello_image: two syscall sites, each traps exactly once then goes fast.
    assert slow == tracer.slowpath_total > 0
    assert 0.0 < fraction <= 1.0
    coverage = tracer.coverage()
    for site, row in coverage.items():
        assert row["traps"] >= 1
        assert row["rewritten"] is True
        assert row["origin"] == "trap"


def test_convergence_curve_collapses():
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 40)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    machine, tracer = _traced_run("lazypoline", finish(a, "loopy"))
    points = convergence_curve(tracer.events, bucket=8)
    assert len(points) >= 2
    # First bucket contains the getpid site's (single) slow-path trap; the
    # loop's steady state is pure fast path.  (The final partial bucket is
    # exit_group's own first-and-only trap, so it reads 1.0 — each *site*
    # traps exactly once.)
    assert points[0][1] > 0
    assert points[1][1] == 0.0


def test_max_events_drops_but_keeps_counting():
    tracer = Tracer(max_events=5)
    machine = Machine(tracer=tracer)
    process = machine.load(hello_image())
    attach(machine, process, "lazypoline")
    machine.run_process(process)
    assert len(tracer.events) == 5
    assert tracer.dropped > 0
    assert sum(tracer.counts.values()) == 5 + tracer.dropped


# ------------------------------------------------------------------- exporters
def test_jsonl_export_is_valid_and_complete():
    machine, tracer = _traced_run("lazypoline")
    text = export_jsonl(tracer)
    assert text.endswith("\n")
    objs = [json.loads(line) for line in text.splitlines()]
    assert len(objs) == len(tracer.events)
    kinds = {o["kind"] for o in objs}
    assert {"syscall", "rewrite", "ctx_switch"} <= kinds
    ts = [o["ts"] for o in objs]
    assert ts == sorted(ts)
    sys_lines = [o for o in objs if o["kind"] == "syscall"]
    assert all(
        {"name", "sysno", "args", "ret", "cycles"} <= set(o) for o in sys_lines
    )


def test_chrome_export_shape():
    machine, tracer = _traced_run("lazypoline")
    doc = export_chrome(tracer)
    events = doc["traceEvents"]
    assert json.loads(json.dumps(doc)) == doc  # round-trips as JSON
    phases = {e["ph"] for e in events}
    assert {"M", "X", "B", "E", "i"} <= phases
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] > 0
            assert e["ts"] >= 0
    # Balanced scheduler slices.
    assert sum(e["ph"] == "B" for e in events) == sum(
        e["ph"] == "E" for e in events
    )


def test_strace_render():
    machine, tracer = _traced_run("lazypoline")
    text = render_strace(tracer)
    assert "write(" in text
    assert "exit_group(" in text
    assert "SIGSYS slow path" in text
    assert "rewrote site" in text
    assert "slice" not in text
    with_sched = render_strace(tracer, show_scheduler=True)
    assert ">>> slice" in with_sched


# ------------------------------------------------------- determinism guarantee
def test_simulated_clock_identical_with_and_without_tracer():
    def run(tracer):
        machine = Machine(tracer=tracer)
        process = machine.load(hello_image())
        attach(machine, process, "lazypoline")
        machine.run_process(process)
        return machine.clock, process.stdout

    clock_off, out_off = run(None)
    clock_on, out_on = run(Tracer())
    assert clock_on == clock_off
    assert out_on == out_off


def test_cache_invalidation_events_on_rewrite():
    # Lazypoline's in-place rewrite bumps the exec generation; re-executing
    # the patched page must surface as cache_invalidate events.
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 3)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    machine, tracer = _traced_run("lazypoline", finish(a, "inval"))
    assert tracer.cache_invalidations > 0
    assert tracer.counts.get(K.CACHE_INVALIDATE, 0) == tracer.cache_invalidations
