"""The fault harness itself: determinism, units, CLI, and bug regressions.

Covers the acceptance criteria that are about the *harness* rather than the
interposition stack:

* the recorded seed corpus (tests/data/fault_seeds.json) replays green —
  these seeds either exposed a real bug once or pin a boundary worth
  keeping hot, and they run before the wider sweeps do;
* the same seed produces byte-identical schedules, fault plans and
  scenario digests (run-to-run determinism, asserted, not assumed);
* the injector/explorer primitives behave as specified in isolation;
* every CLI entry point (single seed, sweep, minimise, fuzz) works and a
  failing seed reproduces from the one printed command;
* the three bugs the explorer originally surfaced stay fixed, each pinned
  by a test naming its invariant.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    CORPUS,
    ExplorerPolicy,
    FaultInjector,
    FaultRecord,
    FaultRule,
    SCENARIOS,
    SignalTrigger,
    differences,
    instruction_boundaries,
    lazypoline_windows,
    run_guest,
)
from repro.faults.cli import main as faults_main, minimize, run_one
from repro.faults.rng import SplitMix64
from repro.faults.scenarios import PROBE_WINDOWS, build_two_signal_guest
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.syscalls.mm import PROT_READ, PROT_WRITE
from repro.kernel.syscalls.table import NR
from repro.mem import layout

pytestmark = pytest.mark.faults


# ------------------------------------------------------------ corpus replay
def test_recorded_seed_corpus_replays_green(fault_seed_corpus):
    """Every recorded regression seed still passes.

    Runs first in this module so a reintroduced bug fails on the exact
    seed that found it originally, with the one-command reproduction in
    the failure message.
    """
    ran = 0
    for scenario, seeds in fault_seed_corpus.items():
        if scenario not in SCENARIOS:
            continue  # metadata keys like "_comment"
        for seed in seeds:
            result = SCENARIOS[scenario](seed)
            assert result.ok, (
                f"recorded seed regressed: {result.detail}\n"
                f"  reproduce: python -m repro.faults "
                f"--scenario {scenario} --seed {seed}"
            )
            ran += 1
    assert ran >= 15  # the corpus is supposed to stay non-trivial


# ------------------------------------------------------------- smoke sweep
def test_scenario_smoke_sweep(fault_seed_count):
    """Sweep every scenario over the first N seeds (``--fault-seeds=N``).

    The default N=32 is the smoke tier: because rewrite_window maps seed
    N onto boundary ``N % len(boundaries)`` and the probed windows hold
    32 boundaries, 32 consecutive seeds deterministically cover every
    instruction boundary of the stub, the SIGSYS slow path and the
    sigreturn trampoline — asserted below, not assumed.
    """
    failures = []
    covered: set = set()
    for seed in range(fault_seed_count):
        for name, fn in sorted(SCENARIOS.items()):
            result = fn(seed)
            if name == "rewrite_window":
                covered.update(result.covered)
            if not result.ok:
                failures.append(
                    f"{name} seed {seed}: {result.detail}\n"
                    f"  reproduce: python -m repro.faults "
                    f"--scenario {name} --seed {seed}"
                )
    assert not failures, "\n".join(failures)
    if fault_seed_count >= 32:
        machine = Machine()
        process = machine.load(build_two_signal_guest())
        tool = Lazypoline._install(machine, process, TraceInterposer())
        windows = lazypoline_windows(tool)
        all_boundaries = set()
        for name in PROBE_WINDOWS:
            w = windows[name]
            all_boundaries.update(
                instruction_boundaries(tool.blobs.code, 0, w.start, w.end)
            )
        assert covered == all_boundaries, (
            "sweep missed boundaries: "
            f"{[hex(b) for b in sorted(all_boundaries - covered)]}"
        )


# -------------------------------------------------------------- determinism
@pytest.mark.parametrize(
    "scenario,seed",
    [("rewrite_window", 5), ("mprotect_fault", 1), ("transient_faults", 0)],
)
def test_same_seed_same_digest(scenario, seed):
    """Same (scenario, seed) twice -> byte-identical result digests."""
    first = SCENARIOS[scenario](seed)
    second = SCENARIOS[scenario](seed)
    assert first.ok and second.ok
    assert first.digest() == second.digest()
    assert first.digests == second.digests


def test_explorer_schedule_digest_is_stable():
    """Two policies with the same seed drive identical schedules."""
    digests = []
    for _ in range(2):
        machine = Machine(policy=ExplorerPolicy(1234))
        process = machine.load(build_two_signal_guest())
        Lazypoline._install(machine, process, TraceInterposer())
        machine.run(until=lambda: not process.alive, max_instructions=400_000)
        assert process.exit_code == 0x1
        digests.append(machine.scheduler.policy.trace.digest())
    assert digests[0] == digests[1]


def test_different_seeds_usually_differ():
    """Seeds are not silently ignored: 0 and 1 perturb differently."""
    traces = []
    for seed in (0, 1):
        machine = Machine(policy=ExplorerPolicy(seed))
        process = machine.load(build_two_signal_guest())
        Lazypoline._install(machine, process, TraceInterposer())
        machine.run(until=lambda: not process.alive, max_instructions=400_000)
        traces.append(machine.scheduler.policy.trace)
    assert traces[0].digest() != traces[1].digest()


def test_splitmix64_known_answers():
    """Pin the PRNG byte-for-byte: every seeded decision depends on this."""
    r = SplitMix64(0)
    assert [r.next_u64() for _ in range(3)] == [
        0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
    ]
    r = SplitMix64(42)
    assert [r.next_u64() for _ in range(3)] == [
        0xBDD732262FEB6E95, 0x28EFE333B266F103, 0x47526757130F9F52,
    ]
    r = SplitMix64(42)
    assert [r.below(10) for _ in range(6)] == [3, 1, 8, 4, 0, 2]
    r = SplitMix64(7)
    assert r.shuffle(list(range(8))) == [1, 4, 5, 2, 6, 0, 3, 7]
    assert SplitMix64(9).below(1) == 0
    assert not SplitMix64(9).chance(0, 10)


# ------------------------------------------------------------ injector units
class _FakeTask:
    def __init__(self, tid=1000):
        self.tid = tid


def test_fault_rule_skip_and_max_injections():
    rule = FaultRule(errno=errno.EINTR, name="write", skip=2, max_injections=2)
    task = _FakeTask()
    args = (1, 0, 2, 0, 0, 0)
    hits = [rule.matches(task, NR["write"], args) for _ in range(6)]
    assert hits == [False, False, True, True, False, False]
    # a different syscall never matches nor consumes skip budget
    assert not rule.matches(task, NR["read"], args)


def test_fault_rule_tid_and_predicate():
    rule = FaultRule(
        errno=errno.ENOMEM,
        name="mprotect",
        tid=7,
        predicate=lambda task, sysno, args: args[2] == 3,
    )
    assert not rule.matches(_FakeTask(tid=8), NR["mprotect"], (0, 0, 3))
    assert not rule.matches(_FakeTask(tid=7), NR["mprotect"], (0, 0, 5))
    assert rule.matches(_FakeTask(tid=7), NR["mprotect"], (0, 0, 3))


def test_injector_records_and_replays_plan():
    task = _FakeTask()
    injector = FaultInjector(
        rules=(FaultRule(errno=errno.EINTR, name="write", skip=1),)
    )
    results = [
        injector.intercept(None, task, NR["write"], ()) for _ in range(3)
    ]
    assert results == [None, -errno.EINTR, None]
    assert [r.seq for r in injector.plan] == [1]

    replay = FaultInjector.from_plan(injector.plan_json())
    results = [
        replay.intercept(None, task, NR["write"], ()) for _ in range(3)
    ]
    assert results == [None, -errno.EINTR, None]
    assert replay.plan_digest() == injector.plan_digest()


def test_fault_record_json_round_trip():
    record = FaultRecord(seq=3, tid=1000, sysno=NR["write"], errno=errno.EAGAIN)
    assert FaultRecord.from_json(record.to_json()) == record
    assert record.name == "write"


def test_seeded_injector_is_deterministic():
    task = _FakeTask()
    plans = []
    for _ in range(2):
        injector = FaultInjector(seed=99, rate=(1, 2), eligible=("write",))
        for _ in range(20):
            injector.intercept(None, task, NR["write"], ())
        plans.append(injector.plan_digest())
        assert injector.plan  # rate 1/2 over 20 calls: some faults injected
    assert plans[0] == plans[1]


# ------------------------------------------------------------ explorer units
def test_instruction_boundaries_walk():
    from repro.arch.encode import Assembler

    a = Assembler(base=0x1000)
    a.mov_imm("rax", 1)  # 10 bytes
    a.syscall()          # 2 bytes
    a.ret()              # 1 byte
    code = a.assemble()
    bounds = instruction_boundaries(code, 0x1000, 0x1000, 0x1000 + len(code))
    assert bounds[0] == 0x1000
    assert len(bounds) == 3
    assert bounds[-1] + 1 == 0x1000 + len(code)


def test_signal_trigger_arming():
    trig = SignalTrigger(addr=0x200, sig=10, arm_addr=0x400)
    assert not trig.armed and not trig.fired
    trig_no_arm = SignalTrigger(addr=0x200, sig=10)
    assert trig_no_arm.armed


def test_quantum_perturbation_bounds():
    policy = ExplorerPolicy(3, quantum=64, min_quantum=1)
    quanta = {policy.quantum_for(None, 64) for _ in range(200)}
    assert min(quanta) >= 1 and max(quanta) <= 64
    assert len(quanta) > 10  # actually perturbs
    fixed = ExplorerPolicy(3, perturb_quantum=False)
    assert fixed.quantum_for(None, 64) == 64


def test_schedule_order_is_permutation():
    policy = ExplorerPolicy(11)
    tasks = list(range(6))
    shuffled = policy.schedule_order(tasks)
    assert sorted(shuffled) == tasks
    stable = ExplorerPolicy(11, perturb_order=False)
    assert stable.schedule_order(tasks) == tasks


# --------------------------------------------------------------------- CLI
def test_cli_single_seed_ok(capsys):
    rc = faults_main(["--scenario", "mprotect_fault", "--seed", "2"])
    assert rc == 0
    assert "ok" in capsys.readouterr().out


def test_cli_json_output(capsys):
    rc = faults_main(["--scenario", "rewrite_window", "--seed", "0", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["digests"]


def test_cli_sweep_and_variant_flags(capsys):
    rc = faults_main(
        ["--scenario", "mprotect_fault", "--seeds", "0,1", "--no-order"]
    )
    assert rc == 0
    assert "2/2" in capsys.readouterr().out


def test_cli_reports_failures_with_reproduction(monkeypatch, capsys):
    def flaky(seed, *, perturb_order=True, perturb_quantum=True):
        from repro.faults.scenarios import ScenarioResult

        failing = seed >= 2 and perturb_order
        return ScenarioResult(
            scenario="flaky", seed=seed, ok=not failing,
            detail="synthetic failure" if failing else "",
        )

    monkeypatch.setitem(SCENARIOS, "flaky", flaky)
    rc = faults_main(["--scenario", "flaky", "--seeds", "0:4"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL flaky seed=2" in out
    assert "reproduce: python -m repro.faults --scenario flaky --seed 2" in out

    report = minimize("flaky", 3)
    # ingredient axis: failure needs perturb_order, survives without quantum
    assert report["variant"] == {
        "perturb_order": True, "perturb_quantum": False,
    }
    # seed axis: 2 is the smallest failing seed
    assert report["minimal_seed"] == 2
    assert report["command"] == (
        "python -m repro.faults --scenario flaky --seed 2 --no-quantum"
    )
    # and the printed command round-trips to the same failure
    assert run_one("flaky", 2, perturb_order=True, perturb_quantum=False).ok \
        is False


def test_cli_minimize_on_passing_seed():
    report = minimize("mprotect_fault", 0)
    assert report.get("already_passing") is True


# ------------------------------------------------------------- regressions
def _trampoline_seed_offsets() -> list[int]:
    """Seed values that map onto the sigreturn-trampoline boundaries."""
    machine = Machine()
    process = machine.load(build_two_signal_guest())
    tool = Lazypoline._install(machine, process, TraceInterposer())
    windows = lazypoline_windows(tool)
    offset = 0
    for name in PROBE_WINDOWS:
        if name == "trampoline":
            break
        w = windows[name]
        offset += len(
            instruction_boundaries(tool.blobs.code, 0, w.start, w.end)
        )
    w = windows["trampoline"]
    count = len(instruction_boundaries(tool.blobs.code, 0, w.start, w.end))
    return [offset + i for i in range(count)]


def test_regression_nested_signal_in_sigreturn_trampoline():
    """INVARIANT: sigreturn of a signal that interrupted the sigreturn
    trampoline must not overwrite the outer GS_TRAMP_SEL/GS_TRAMP_RIP
    slots — they still belong to the in-progress outer restore.  The fix
    resumes the nested return at the trampoline top (idempotent reads)
    instead; without it the outer gsjmp targets the trampoline itself and
    the guest livelocks in an infinite self-jump.
    """
    offsets = _trampoline_seed_offsets()
    assert len(offsets) >= 2  # gscopy8 and gsjmp at minimum
    for seed in offsets:
        result = SCENARIOS["rewrite_window"](seed)
        assert result.ok, (
            f"trampoline boundary seed {seed}: {result.detail}\n"
            f"  reproduce: python -m repro.faults "
            f"--scenario rewrite_window --seed {seed}"
        )


@pytest.mark.parametrize("tool", CORPUS["execve_chain"].tools)
def test_regression_execve_interposed_from_sigsys_handler(tool):
    """INVARIANT: after an interposer executes execve on the guest's
    behalf, the SIGSYS delivery path must not touch the old address
    space's selector or signal frame — a successful execve destroyed
    them.  The regression wrote the old selector address into the *new*
    image and segfaulted the freshly exec'd program.
    """
    program = CORPUS["execve_chain"]
    for seed in range(4):
        report = run_guest(
            program.build,
            tool,
            policy=ExplorerPolicy(seed),
            setup=program.setup,
            max_instructions=program.max_instructions,
        )
        assert not report.crashed, f"{tool} seed {seed}: guest crashed"
        assert report.signal is None, (
            f"{tool} seed {seed}: exec'd program killed by {report.signal}"
        )
        assert report.exit == 5
        assert report.stdout == b"before\nafter\n"


def test_regression_failed_opening_mprotect_keeps_slow_path():
    """INVARIANT: when the mprotect that would open lazypoline's rewrite
    window fails, the site must stay un-rewritten (permanent slow path)
    and the guest must observe nothing.  The regression ignored the
    failure and wrote through the still-read-only page, killing the guest
    with a spurious SIGSEGV.  Only the *opening* call (PROT_READ|WRITE)
    is failed: a failed restore legitimately strips execute permission
    from live code, which no userspace tool can recover from.
    """
    opening = PROT_READ | PROT_WRITE
    injector = FaultInjector(
        rules=(
            FaultRule(
                errno=errno.ENOMEM, name="mprotect", max_injections=10_000,
                predicate=lambda task, sysno, args: args[2] == opening,
            ),
        )
    )
    machine = Machine(policy=ExplorerPolicy(0))
    machine.kernel.fault_injector = injector
    process = machine.load(build_two_signal_guest())
    tool = Lazypoline._install(machine, process, TraceInterposer())
    machine.run(until=lambda: not process.alive, max_instructions=400_000)
    assert not process.alive
    assert process.term_signal is None
    assert process.exit_code == 0x1
    assert injector.plan, "no opening mprotect was ever attempted"
    guest_sites = {s for s in tool.rewritten if s >= layout.CODE_BASE}
    assert not guest_sites, (
        f"sites rewritten despite failed opening mprotect: "
        f"{[hex(s) for s in guest_sites]}"
    )


# ------------------------------------------------------- oracle sanity check
def test_differences_reports_divergence():
    """The differential oracle is not vacuous: a doctored report diverges."""
    report = run_guest(
        CORPUS["syscall_loop"].build, "lazypoline", policy=ExplorerPolicy(0)
    )
    twin = run_guest(
        CORPUS["syscall_loop"].build, "sud", policy=ExplorerPolicy(0)
    )
    assert differences(report, twin) == []
    import dataclasses

    doctored = dataclasses.replace(twin, exit=99)
    assert any("exit" in d for d in differences(report, doctored))
    doctored = dataclasses.replace(twin, stdout=b"tampered")
    assert any("stdout" in d for d in differences(report, doctored))
