"""Function-level (LD_PRELOAD-style) interposition and its blind spots."""

from __future__ import annotations

from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.preload_tool import PreloadTool
from repro.kernel.syscalls.table import NR
from repro.libc.wrappers import emit_call, emit_wrappers

from tests.conftest import asm, finish


def _wrapper_program(*, with_raw_syscall: bool):
    a = asm()
    a.label("_start")
    # getpid via the libc wrapper
    emit_call(a, "getpid")
    # write(1, msg, 6) via the wrapper
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 6)
    emit_call(a, "write")
    if with_raw_syscall:
        # a raw, inline syscall — outside any wrapper function
        a.mov_imm("rax", NR["gettid"])
        a.syscall()
    a.mov_imm("rdi", 0)
    emit_call(a, "exit_group")
    emit_wrappers(a)
    a.label("msg")
    a.db(b"hello\n")
    return finish(a, name="wrapped")


def test_wrapper_calls_interposed(machine):
    proc = machine.load(_wrapper_program(with_raw_syscall=False))
    tr = TraceInterposer()
    tool = PreloadTool._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"hello\n"
    assert tr.names == ["getpid", "write", "exit_group"]
    assert set(tool.patched) >= {"getpid", "write", "exit_group"}


def test_return_value_flows_through(machine):
    def fake(ctx):
        if ctx.name == "getpid":
            ctx.do_syscall()
            return 99
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_call(a, "getpid")
    a.mov("rdi", "rax")
    emit_call(a, "exit_group")
    emit_wrappers(a)
    proc = machine.load(finish(a, name="w2"))
    PreloadTool._install(machine, proc, fake)
    assert machine.run_process(proc) == 99


def test_raw_syscall_escapes_function_interposition(machine):
    """§VII: syscall instructions outside wrapper functions are invisible."""
    proc = machine.load(_wrapper_program(with_raw_syscall=True))
    tr = TraceInterposer()
    PreloadTool._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert "gettid" not in tr.names  # escaped
    assert tr.count("write") == 1  # wrappers still seen


def test_lazypoline_catches_what_preload_misses(machine):
    proc = machine.load(_wrapper_program(with_raw_syscall=True))
    tr = TraceInterposer()
    Lazypoline._install(machine, proc, tr)
    machine.run_process(proc)
    assert "gettid" in tr.names  # syscall-level interposition is exhaustive


def test_unknown_wrappers_not_patched(machine):
    proc = machine.load(_wrapper_program(with_raw_syscall=False))
    tool = PreloadTool._install(machine, proc, wrappers=["write"])
    tr = tool.interposer  # passthrough; just check the patch set
    assert set(tool.patched) == {"write"}
    del tr


def test_preload_is_cheap(machine):
    """Function-level interposition has minimal overhead (§VII)."""
    from repro.kernel.machine import Machine

    def run(tool: bool) -> float:
        m = Machine()
        p = m.load(_wrapper_program(with_raw_syscall=False))
        if tool:
            PreloadTool._install(m, p, TraceInterposer())
        m.run_process(p)
        return m.clock

    assert run(True) < 1.1 * run(False)
