"""The Process/Machine public facade and task bookkeeping."""

from __future__ import annotations

from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.kernel.task import FdTable, SigAction, SigHandlers, TaskState

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


def test_process_properties(machine):
    proc = machine.load(hello_image(b"x\n", exit_code=5))
    assert proc.alive
    assert proc.pid == proc.task.tid
    machine.run_process(proc)
    assert not proc.alive
    assert proc.exit_code == 5
    assert proc.term_signal is None
    assert proc.stdout == b"x\n"
    assert proc.stderr == b""


def test_threads_listing(machine):
    from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS

    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    emit_exit(a, 0)
    a.label("child")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    proc = machine.load(finish(a))
    machine.run()
    assert len(proc.threads()) == 2
    assert {t.pid for t in proc.threads()} == {proc.pid}


def test_fdtable_install_and_copy():
    table = FdTable()
    fd1 = table.install("descA")
    fd2 = table.install("descB")
    assert fd1 == 3 and fd2 == 4  # stdio reserved
    fixed = table.install("descC", fd=10)
    assert fixed == 10
    clone = table.copy()
    clone.remove(fd1)
    assert table.get(fd1) == "descA"  # original untouched
    assert clone.get(fd1) is None


def test_sighandlers_copy_is_deep():
    handlers = SigHandlers()
    handlers.set(10, SigAction(handler=0x1234, flags=1))
    clone = handlers.copy()
    clone.set(10, SigAction(handler=0x9999))
    assert handlers.get(10).handler == 0x1234


def test_task_signal_mask_helpers(machine):
    proc = machine.load(hello_image())
    task = proc.task
    assert not task.signal_blocked(10)
    task.sigmask |= 1 << 10
    assert task.signal_blocked(10)
    from repro.kernel.task import PendingSignal

    task.pending.append(PendingSignal(10))
    assert not task.has_deliverable_signal()
    task.sigmask = 0
    assert task.has_deliverable_signal()


def test_task_states(machine):
    proc = machine.load(hello_image())
    assert proc.task.state is TaskState.RUNNABLE
    machine.run()
    assert proc.task.state is TaskState.ZOMBIE
    assert proc.task in machine.zombies()


def test_wait_reaps_to_dead(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run()
    child = [t for t in machine.kernel.tasks.values() if t.parent is proc.task][0]
    assert child.state is TaskState.DEAD  # reaped by wait4


def test_machine_register_hcall_roundtrip(machine):
    calls = []
    hid = machine.kernel.register_hcall(lambda ctx: calls.append(ctx.task.tid))
    a = asm()
    a.label("_start")
    a.hcall(hid)
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run_process(proc)
    assert calls == [proc.task.tid]


def test_unknown_hcall_is_sigill(machine):
    a = asm()
    a.label("_start")
    a.hcall(999)
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    from repro.kernel.signals import SIGILL

    assert proc.term_signal == SIGILL
