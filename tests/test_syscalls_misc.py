"""Misc syscalls: iovecs, futex threads, time, randomness, errno paths."""

from __future__ import annotations

import pytest

from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def test_writev_gathers(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # iovec[0] = {msg1, 3}; iovec[1] = {msg2, 3}
    a.mov_imm("rcx", "m1")
    a.store("r12", 0, "rcx")
    a.mov_imm("rcx", 3)
    a.store("r12", 8, "rcx")
    a.mov_imm("rcx", "m2")
    a.store("r12", 16, "rcx")
    a.mov_imm("rcx", 3)
    a.store("r12", 24, "rcx")
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 2)
    a.mov_imm("rax", NR["writev"])
    a.syscall()
    a.mov("rdi", "rax")  # total bytes
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("m1")
    a.db(b"abc")
    a.label("m2")
    a.db(b"def")
    proc, code = run_program(machine, finish(a))
    assert code == 6
    assert proc.stdout == b"abcdef"


def test_readv_scatters(machine):
    machine.fs.create("/f", b"ABCDEFGH")
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)
    a.mov("rbx", "rax")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # two 3-byte buffers at r12+256 and r12+512
    a.lea("rcx", "r12", 256)
    a.store("r12", 0, "rcx")
    a.mov_imm("rcx", 3)
    a.store("r12", 8, "rcx")
    a.lea("rcx", "r12", 512)
    a.store("r12", 16, "rcx")
    a.mov_imm("rcx", 3)
    a.store("r12", 24, "rcx")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 2)
    a.mov_imm("rax", NR["readv"])
    a.syscall()
    a.cmpi("rax", 6)
    a.jnz("bad")
    # check the scattered bytes
    a.load8("rcx", "r12", 256)
    a.cmpi("rcx", ord("A"))
    a.jnz("bad")
    a.load8("rcx", "r12", 512 + 2)
    a.cmpi("rcx", ord("F"))
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/f\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_writev_bad_fd(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", 99)
    a.mov_imm("rsi", 0x1000)
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["writev"])
    a.syscall()
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == errno.EBADF


def test_futex_wait_wake_between_threads(machine):
    """Main thread futex-waits; the spawned thread wakes it."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")  # futex word at [r12], child stack at top
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    # parent: FUTEX_WAIT(r12, 0)
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 0)  # FUTEX_WAIT
    a.mov_imm("rdx", 0)  # expected value
    a.mov_imm("r10", 0)
    a.mov_imm("rax", NR["futex"])
    a.syscall()
    # woken: read the value the child wrote
    a.load("rdi", "r12", 8)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("child")
    a.mov_imm("rcx", 123)
    a.store("r12", 8, "rcx")
    a.mov_imm("rcx", 1)
    a.store("r12", 0, "rcx")
    # FUTEX_WAKE(r12, 1)
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 1)  # FUTEX_WAKE
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["futex"])
    a.syscall()
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    proc, code = run_program(machine, finish(a))
    assert code == 123


def test_futex_wait_value_mismatch_eagain(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rcx", 5)
    a.store("r12", 0, "rcx")
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 0)  # FUTEX_WAIT
    a.mov_imm("rdx", 0)  # expected 0, actual 5
    a.mov_imm("rax", NR["futex"])
    a.syscall()
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == errno.EAGAIN


def test_getrandom_fills_buffer_deterministically():
    def run_once():
        m = Machine()
        a = asm()
        a.label("_start")
        emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
        a.mov("r12", "rax")
        a.mov("rdi", "r12")
        a.mov_imm("rsi", 16)
        a.mov_imm("rdx", 0)
        a.mov_imm("rax", NR["getrandom"])
        a.syscall()
        emit_exit(a, 0)
        proc, _ = run_program(m, finish(a))
        buf = proc.task.regs.read_name("r12")
        return proc.task.mem.read(buf, 16, check=None)

    first = run_once()
    assert first != b"\x00" * 16


def test_clock_gettime_tracks_simulated_time(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r12")
    a.mov_imm("rax", NR["clock_gettime"])
    a.syscall()
    emit_exit(a, 0)
    proc, code = run_program(machine, finish(a))
    assert code == 0
    buf = proc.task.regs.read_name("r12")
    sec = proc.task.mem.read_u64(buf, check=None)
    nsec = proc.task.mem.read_u64(buf + 8, check=None)
    assert sec == 0
    assert 0 < nsec < 1e9


@pytest.mark.parametrize(
    "name,args,expected",
    [
        ("close", (99,), errno.EBADF),
        ("lseek", (99, 0, 0), errno.EBADF),
        ("epoll_ctl", (99, 1, 0, 0), errno.EINVAL),
        ("chdir", (0x10,), errno.EFAULT),
    ],
)
def test_error_paths(machine, name, args, expected):
    a = asm()
    a.label("_start")
    emit_syscall(a, name, *args)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == expected
