"""Tracer overhead when disabled: tier-1 perf must be untouched.

Two guarantees:

* **simulated** — cycle accounting is bit-identical with tracing on or off
  (covered per-workload here and in test_obs_tracer.py),
* **wall-clock** — with ``tracer=None`` the cached-interpreter guest MIPS
  stays within a (generous) band of the committed ``BENCH_interp.json``
  baseline, reusing ``benchmarks/check_regression.py``'s comparison
  machinery.  The band is wide (50%) because pytest runs on shared, noisy
  hardware; ``make perf`` enforces the tight 15% band on dedicated runs.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import time

import pytest

from repro.kernel.machine import Machine
from repro.obs import Tracer

from tests.conftest import hello_image

pytestmark = pytest.mark.obs

ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = ROOT / "BENCH_interp.json"

#: Generous tolerance: this is a smoke guard, not the perf gate.
TOLERANCE = 0.50


def _load_check_regression():
    path = ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _compute_loop_image(iters: int):
    from repro.arch.encode import Assembler
    from repro.kernel.syscalls.table import NR
    from repro.loader.image import image_from_assembler
    from repro.mem import layout

    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rbx", iters)
    a.mov_imm("rax", 0)
    a.label("loop")
    a.addi("rax", 3)
    a.xori("rax", 0x55)
    a.inc("rcx")
    a.dec("rbx")
    a.jnz("loop")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    return image_from_assembler("microbench-steady", a, entry="_start")


def _measure_mips(tracer, iters: int = 100_000, repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        machine = Machine(tracer=tracer)
        proc = machine.load(_compute_loop_image(iters))
        t0 = time.perf_counter()
        machine.run_process(proc, max_instructions=20_000_000)
        seconds = time.perf_counter() - t0
        mips = machine.scheduler.total_instructions / seconds / 1e6
        best = max(best, mips)
    return best


def test_disabled_tracer_keeps_baseline_mips():
    if not BASELINE.exists():
        pytest.skip("no BENCH_interp.json baseline committed")
    baseline = json.loads(BASELINE.read_text())
    if "microbench" not in baseline.get("workloads", {}):
        pytest.skip("baseline lacks the microbench workload")

    mips = _measure_mips(tracer=None)
    current = {"workloads": {"microbench": {"mips": mips}}}
    reference = {
        "workloads": {"microbench": baseline["workloads"]["microbench"]}
    }
    check = _load_check_regression()
    failures = check.compare(reference, current, TOLERANCE)
    assert not failures, f"tracer=None regressed guest MIPS: {failures}"


def test_disabled_tracer_identical_simulated_cycles_compute_loop():
    def clock_of(tracer):
        machine = Machine(tracer=tracer)
        proc = machine.load(_compute_loop_image(2_000))
        machine.run_process(proc)
        return machine.clock

    assert clock_of(None) == clock_of(Tracer())


def test_machine_without_tracer_has_no_tracer_attribute_cost():
    # The emit-site contract: every instrumented layer holds a ``tracer``
    # attribute that is None by default, so the guards are attribute loads,
    # never hasattr probes.
    machine = Machine()
    assert machine.tracer is None
    assert machine.kernel.tracer is None
    assert machine.kernel.cpu.tracer is None
    process = machine.load(hello_image())
    assert machine.run_process(process) == 0


def test_attach_tracer_mid_flight_and_detach():
    machine = Machine()
    tracer = Tracer()
    machine.attach_tracer(tracer)
    assert machine.kernel.tracer is tracer
    assert tracer.machine is machine
    process = machine.load(hello_image())
    machine.run_process(process)
    assert tracer.events
    machine.attach_tracer(None)
    assert machine.kernel.tracer is None
    assert machine.kernel.cpu.tracer is None
