"""Graceful degradation: hostile environments and resource exhaustion.

The claim under test is the robustness contract of
:mod:`repro.interpose.lazypoline.degrade`: whatever the environment does —
deny the VA-0 sled (``mmap_min_addr``), starve setup of memory, fail
rewrite mprotects transiently or permanently, exhaust protection keys or
the per-task %gs stacks — lazypoline either keeps interposing in a lower
mode or fails the *attach* loudly; it never silently loses interposition,
never leaves a torn syscall site, and the guest never sees anything a bare
run would not have shown it (except, by explicit policy, a clean SIGSEGV
on resource exhaustion).
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import AttachError
from repro.faults import FaultInjector, FaultRule, differences, run_guest
from repro.faults.scenarios import (
    SCENARIOS,
    build_nested_signal_guest,
    build_two_signal_guest,
)
from repro.interpose import DegradePolicy, Mode, attach
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import gsrel
from repro.interpose.lazypoline.config import LazypolineConfig
from repro.interpose.lazypoline.degrade import (
    DegradeController,
    as_degrade_policy,
)
from repro.interpose.zpoline.rewriter import site_intact
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.signals import SIGSEGV
from repro.kernel.syscalls.table import NR
from repro.mem.pages import PAGE_SIZE, Perm
from repro.obs import Tracer
from repro.obs import events as K
from repro.workloads.coreutils import build_coreutil, setup_fs

pytestmark = pytest.mark.degrade


# --------------------------------------------------------- policy plumbing
def test_mode_ladder_is_ordered_one_way():
    assert Mode.FULL_HYBRID.rank < Mode.SUD_ONLY.rank < Mode.PASSTHROUGH.rank
    controller = DegradeController(
        Machine().kernel, DegradePolicy(), mechanism="lazypoline"
    )
    assert controller.mode is Mode.FULL_HYBRID
    assert controller.degrade_to(Mode.SUD_ONLY, "test")
    # never back up the ladder
    assert controller.mode is Mode.SUD_ONLY
    assert controller.degrade_to(Mode.SUD_ONLY, "again") is True
    assert controller.mode is Mode.SUD_ONLY


def test_policy_floor_blocks_degradation():
    kernel = Machine().kernel
    pinned = DegradeController(
        kernel, DegradePolicy(floor=Mode.FULL_HYBRID), mechanism="lazypoline"
    )
    assert not pinned.degrade_to(Mode.SUD_ONLY, "denied")
    assert pinned.mode is Mode.FULL_HYBRID
    default = DegradeController(
        kernel, DegradePolicy(), mechanism="lazypoline"
    )
    assert default.degrade_to(Mode.SUD_ONLY, "ok")
    assert not default.degrade_to(Mode.PASSTHROUGH, "below floor")
    assert default.mode is Mode.SUD_ONLY


def test_as_degrade_policy_coercions():
    assert as_degrade_policy(None) == DegradePolicy()
    assert as_degrade_policy("passthrough").floor is Mode.PASSTHROUGH
    assert as_degrade_policy(Mode.FULL_HYBRID).floor is Mode.FULL_HYBRID
    policy = as_degrade_policy({"rewrite_retries": 5, "floor": "sud_only"})
    assert policy.rewrite_retries == 5 and policy.floor is Mode.SUD_ONLY
    same = as_degrade_policy(policy)
    assert same is policy
    with pytest.raises(ValueError):
        as_degrade_policy({"depth_overflow": "explode"})


def test_registry_warns_and_drops_policy_for_unaware_tools():
    machine = Machine()
    setup_fs(machine)
    process = machine.load(build_coreutil("cat"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        attach(machine, process, tool="sud", degrade_policy="sud_only")
    assert any(
        "no graceful-degradation support" in str(w.message) for w in caught
    )
    assert machine.run_process(process) == 0  # the attach itself still worked


# ------------------------------------------------------ hostile attach ladder
def _run_coreutil(name, *, tool=None, mmap_min_addr=0, **opts):
    machine = Machine(mmap_min_addr=mmap_min_addr)
    setup_fs(machine)
    process = machine.load(build_coreutil(name))
    trace = TraceInterposer()
    tool_obj = None
    if tool is not None:
        tool_obj = attach(machine, process, tool=tool, interposer=trace, **opts)
    machine.run(until=lambda: not process.alive, max_instructions=3_000_000)
    return {
        "exit": process.exit_code,
        "signal": process.term_signal,
        "stdout": process.stdout,
        "trace": trace.names,
        "tool": tool_obj,
    }


@pytest.mark.parametrize("util", ["cat", "ls", "cp"])
def test_hostile_mmap_min_addr_attaches_sud_only(util):
    """With the VA-0 sled denied, lazypoline must still interpose every
    syscall — from the SUD slow path — and the guest must see nothing."""
    bare = _run_coreutil(util)
    friendly = _run_coreutil(util, tool="lazypoline")
    hostile = _run_coreutil(util, tool="lazypoline", mmap_min_addr=PAGE_SIZE)
    tool = hostile["tool"]
    assert tool.mode is Mode.SUD_ONLY
    assert not tool.rewritten
    assert hostile["exit"] == bare["exit"] == 0
    assert hostile["signal"] is None
    assert hostile["stdout"] == bare["stdout"]
    # the syscall stream is *identical* to the full-hybrid run: degradation
    # changed the mechanism, not what the interposer observes
    assert hostile["trace"] == friendly["trace"]
    assert friendly["tool"].mode is Mode.FULL_HYBRID


def test_zpoline_has_no_fallback():
    machine = Machine(mmap_min_addr=PAGE_SIZE)
    setup_fs(machine)
    process = machine.load(build_coreutil("cat"))
    with pytest.raises(AttachError, match="no fallback"):
        attach(machine, process, tool="zpoline")


def test_full_hybrid_floor_refuses_hostile_machine():
    machine = Machine(mmap_min_addr=PAGE_SIZE)
    setup_fs(machine)
    process = machine.load(build_coreutil("cat"))
    with pytest.raises(AttachError, match="floor"):
        attach(machine, process, tool="lazypoline",
               degrade_policy="full_hybrid")


def test_setup_enomem_walks_ladder_to_passthrough():
    """Both setup mmaps fail: PASSTHROUGH if the floor allows, else a loud
    AttachError — never a half-armed tool."""
    result = _run_coreutil("cat")
    machine = Machine()
    setup_fs(machine)
    machine.kernel.fault_injector = FaultInjector(
        (FaultRule(errno=errno.ENOMEM, name="mmap", max_injections=2),)
    )
    process = machine.load(build_coreutil("cat"))
    tool = attach(machine, process, tool="lazypoline",
                  degrade_policy="passthrough")
    assert tool.mode is Mode.PASSTHROUGH
    machine.run(until=lambda: not process.alive, max_instructions=3_000_000)
    assert process.exit_code == result["exit"] == 0

    machine = Machine()
    setup_fs(machine)
    machine.kernel.fault_injector = FaultInjector(
        (FaultRule(errno=errno.ENOMEM, name="mmap", max_injections=2),)
    )
    process = machine.load(build_coreutil("cat"))
    with pytest.raises(AttachError, match="floor"):
        attach(machine, process, tool="lazypoline")  # default floor SUD_ONLY


def test_pkey_exhaustion_is_enospc_and_fails_attach():
    """Satellite: pkey_alloc with all 15 keys taken returns -ENOSPC (the
    real kernel's errno), and a pkey-protected attach surfaces it as an
    AttachError instead of arming without the protection."""
    machine = Machine()
    setup_fs(machine)
    process = machine.load(build_coreutil("cat"))
    task = process.task
    for _ in range(15):
        assert machine.kernel.do_syscall(task, NR["pkey_alloc"], (0, 0)) > 0
    assert (
        machine.kernel.do_syscall(task, NR["pkey_alloc"], (0, 0))
        == -errno.ENOSPC
    )
    with pytest.raises(AttachError, match="ENOSPC"):
        attach(
            machine, process, tool="lazypoline",
            config=LazypolineConfig(protect_gs_with_pkey=True),
        )


# ----------------------------------------------------- rewrite hardening
def test_transient_rewrite_fault_is_retried():
    """One injected ENOMEM on an opening mprotect is absorbed by the retry
    budget: the site still gets rewritten."""
    machine = Machine()
    machine.kernel.fault_injector = FaultInjector(
        (FaultRule(errno=errno.ENOMEM, name="mprotect", skip=1),)
    )
    process = machine.load(build_two_signal_guest())
    tool = attach(machine, process, tool="lazypoline",
                  interposer=TraceInterposer())
    machine.run(until=lambda: not process.alive, max_instructions=400_000)
    assert process.exit_code == 0x1
    health = tool.health()
    assert tool.mode is Mode.FULL_HYBRID
    assert not health["blacklisted_sites"]
    assert tool.rewritten  # the faulted site recovered and was rewritten


def test_persistent_rewrite_faults_blacklist_then_demote():
    """Sites that keep failing are pinned to the slow path individually;
    enough of them and the whole tool stops trying (SUD_ONLY) — all of it
    visible in the obs stream."""
    machine = Machine(tracer=Tracer())
    machine.kernel.fault_injector = FaultInjector(
        (FaultRule(errno=errno.ENOMEM, name="mprotect", skip=1,
                   max_injections=10_000),)
    )
    process = machine.load(build_two_signal_guest())
    tool = attach(
        machine, process, tool="lazypoline", interposer=TraceInterposer(),
        degrade_policy={"site_blacklist_after": 1, "demote_after_blacklisted": 2},
    )
    machine.run(until=lambda: not process.alive, max_instructions=400_000)
    assert process.exit_code == 0x1
    assert process.term_signal is None
    assert tool.mode is Mode.SUD_ONLY
    health = tool.health()
    assert len(health["blacklisted_sites"]) == 2
    obs = machine.kernel.tracer
    assert obs.counts[K.REWRITE_BLACKLIST] == 2
    assert obs.counts[K.DEGRADE] == 1
    assert obs.health()["mode"] == "sud_only"
    # every blacklisted site is intact original code, still executable
    for site in health["blacklisted_sites"]:
        assert site_intact(process.task, site)


def test_rewrite_faults_never_leave_torn_sites():
    """The acceptance sweep: seed-varied injections interrupt the rewrite
    at the opening call, the restore call, transiently and permanently —
    and no attempted site is ever observable in a torn state."""
    openings, restores = 0, 0
    for seed in range(18):
        result = SCENARIOS["rewrite_fault"](seed)
        assert result.ok, f"seed {seed}: {result.detail}"
        for _seq, prot in result.covered:
            if prot == 0x3:  # PROT_READ|PROT_WRITE: the window opening
                openings += 1
            else:
                restores += 1
    # the sweep genuinely interrupted both rewrite boundaries
    assert openings and restores


# ----------------------------------------------- resource exhaustion (%gs)
def test_signal_depth_spill_matches_bare():
    result = SCENARIOS["signal_depth"](0)  # even seed: spill variant
    assert result.ok, result.detail


def test_signal_depth_fault_is_clean_sigsegv():
    result = SCENARIOS["signal_depth"](1)  # odd seed: fault variant
    assert result.ok, result.detail


def test_xstate_stack_exhaustion_is_clean_sigsegv():
    """The xstate stack cannot spill (the fast-path asm indexes it); a
    nest deeper than its 8 slots must end in a guest-visible SIGSEGV, not
    a host exception."""
    machine = Machine()
    process = machine.load(build_nested_signal_guest(10))
    tool = attach(machine, process, tool="lazypoline",
                  degrade_policy={"depth_overflow": "spill"})
    machine.run(until=lambda: not process.alive, max_instructions=400_000)
    assert process.term_signal == SIGSEGV
    assert tool.health()["depth_overflows"] == 1


def test_sigret_selector_spill_chains_and_recycles():
    """gsrel unit: pushes past the forced limit chain an overflow page,
    pops drain it back and cache the page in the spare slot."""
    machine = Machine()
    process = machine.load(build_two_signal_guest())
    mem = process.task.mem
    base = gsrel.map_gs_region(mem)
    gsrel.init_gs_region(mem, base)
    values = [(i * 7) % 2 for i in range(10)]
    spills = 0
    for i, value in enumerate(values):
        spills += gsrel.push_sigret_selector(
            mem, base, value, spill=True, force=i >= 4
        )
    assert spills == 1  # one chain crossing, not one per push
    assert gsrel.sigret_depth(mem, base) == len(values)
    assert [
        gsrel.pop_sigret_selector(mem, base) for _ in values
    ] == values[::-1]
    assert gsrel.sigret_depth(mem, base) == 0
    # the drained page is cached, not leaked and not unmapped
    spare = mem.read_u64(base + gsrel.GS_SIGRET_SPARE, check=None)
    assert spare != 0
    assert mem.perm_at(spare) & Perm.W


# -------------------------------------------- differential matrix, hostile
@pytest.mark.parametrize("cores", [1, 2])
def test_hostile_matrix_guest_identical_to_bare(cores):
    """The cross-tool differential oracle holds in SUD_ONLY, including on
    two cores: guest-visible results identical to bare."""
    bare = run_guest(
        build_two_signal_guest, None, max_instructions=400_000
    )
    hostile = run_guest(
        build_two_signal_guest,
        "lazypoline",
        mmap_min_addr=PAGE_SIZE,
        cores=cores,
        max_instructions=400_000,
    )
    assert not hostile.crashed
    assert differences(hostile, bare, compare_trace=False) == []
    sud = run_guest(
        build_two_signal_guest, "sud", cores=cores, max_instructions=400_000
    )
    assert differences(hostile, sud) == []  # trace included


def test_degrade_scenarios_replay_green():
    for name in ("sled_denied", "setup_fault", "signal_depth"):
        for seed in range(6):
            result = SCENARIOS[name](seed)
            assert result.ok, f"{name} seed {seed}: {result.detail}"
