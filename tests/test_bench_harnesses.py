"""Smoke tests for the bench harnesses (small parameters).

The full measurements run under ``pytest benchmarks/``; these keep the
harness plumbing and report formatting under unit test.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation, exhaustiveness, fig4, fig5, table1, table2, table3
from repro.bench.runner import format_table, install_mechanism, within_band
from repro.kernel.machine import Machine

from tests.conftest import hello_image


def test_format_table_alignment():
    out = format_table(["a", "long"], [["xx", "1"], ["y", "22"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "long" in lines[2]
    assert len({len(line) for line in lines[2:]}) <= 2  # consistent widths


def test_within_band():
    assert within_band(1.2, 1.0)
    assert not within_band(2.0, 1.0)
    assert within_band(20.0, 20.8, 0.25)


@pytest.mark.parametrize(
    "mechanism",
    ["baseline", "zpoline", "lazypoline", "lazypoline_noxstate", "sud",
     "seccomp_user", "seccomp_bpf", "ptrace"],
)
def test_install_mechanism_all_names(mechanism):
    machine = Machine()
    process = machine.load(hello_image())
    install_mechanism(mechanism, machine, process)
    assert machine.run_process(process) == 0


def test_install_mechanism_rejects_unknown():
    machine = Machine()
    process = machine.load(hello_image())
    with pytest.raises(ValueError):
        install_mechanism("frobnicate", machine, process)


def test_table2_quick_run_and_report():
    result = table2.run(iterations=60, repeats=2)
    assert set(result.overheads) == set(table2.PAPER)
    report = table2.format_report(result)
    assert "zpoline" in report and "paper" in report
    assert result.overheads["sud"] > result.overheads["lazypoline"]


def test_fig4_quick_run_and_report():
    result = fig4.run(iterations=60)
    components = result.components
    assert set(components) == set(fig4.PAPER_COMPONENTS)
    assert all(v > 0 for v in components.values())
    assert "enabling SUD" in fig4.format_report(result)


def test_table1_probes():
    result = table1.run(iterations=60)
    assert result.matches_paper()
    report = table1.format_report(result)
    assert "MATCHES" in report


def test_table3_run_and_report():
    result = table3.run()
    assert result.matches_paper()
    report = table3.format_report(result)
    assert "MATCHES" in report
    assert "xmm0 across set_tid_address" in report


def test_exhaustiveness_run():
    result = exhaustiveness.run()
    assert result.lazypoline_matches_sud
    assert result.zpoline_missed_jit
    assert "MISSED" in exhaustiveness.format_report(result)


def test_ablation_quick():
    result = ablation.run(iterations=60)
    assert result.pkey_extra_cycles > 0
    assert "isolation premium" in ablation.format_report(result)


def test_fig5_tiny_sweep():
    result = fig5.run(
        servers=("nginx",),
        sizes=(1024,),
        mechanisms=("baseline", "zpoline", "sud"),
        requests=40,
        warmup=5,
    )
    assert result.retention("nginx", 1024, "zpoline") > result.retention(
        "nginx", 1024, "sud"
    )
    multi = result.multi["nginx"][1024]
    assert multi["baseline"] >= multi["sud"]
    report = fig5.format_report(result)
    assert "nginx" in report
