"""Property-based sync/async/direct equivalence for the ring drain.

The core contract of the asynchronous drain (satellite of the async-ring
PR): for ANY op list — blocking entries interleaved with non-blocking
ones, with or without result-linked chains — draining it asynchronously
is observably identical to draining it synchronously, which in turn is
identical to issuing the same syscalls directly.  "Observably" means the
final filesystem, the bytes on stdout (per-op results included), and the
exit code; and the equivalence must hold under every interposition tool,
on 1 and 2 cores, with the superblock tier on or off.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.encode import Assembler
from repro.faults.oracle import differences, run_guest
from repro.kernel.syscalls.table import NR
from repro.libc.uring import GuestRing, ring_result
from repro.loader.image import image_from_assembler
from repro.mem import layout

pytestmark = [pytest.mark.uring, pytest.mark.uring_async]

MODES = ("direct", "ring", "ring_async")

#: Results buffer at r14+0, nanosleep timespecs at +256 (16 bytes each),
#: the chain's read buffer at +768.
_TS_BASE = 256
_READ_BUF = 768


def build_ops_guest(ops, mode, with_chain):
    """One guest executing ``ops`` (+ an optional linked file chain).

    Every op's result is stored into a buffer that is written to stdout
    before exit, so result *values* — not just side effects — are part of
    the observable state the oracle compares.
    """
    assert mode in MODES
    n_total = len(ops) + (3 if with_chain else 0)
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    # tv_nsec for each nanosleep op (tv_sec stays 0: fresh pages are zero)
    for i, op in enumerate(ops):
        if op[0] == "nanosleep":
            a.mov_imm("rdx", op[1])
            a.store("r14", _TS_BASE + 16 * i + 8, "rdx")

    def emit_direct():
        for i, op in enumerate(ops):
            if op[0] == "nanosleep":
                a.lea("rdi", "r14", _TS_BASE + 16 * i)
                a.mov_imm("rsi", 0)
            elif op[0] == "write":
                a.mov_imm("rdi", 1)
                a.mov_imm("rsi", "msg")
                a.mov_imm("rdx", op[1])
            a.mov_imm("rax", NR[op[0]])
            a.syscall()
            a.store("r14", 8 * i, "rax")
        if with_chain:
            base = len(ops)
            a.mov_imm("rdi", "path")
            a.mov_imm("rsi", 0)
            a.mov_imm("rdx", 0)
            a.mov_imm("rax", NR["open"])
            a.syscall()
            a.mov("r13", "rax")
            a.store("r14", 8 * base, "rax")
            a.mov("rdi", "r13")
            a.lea("rsi", "r14", _READ_BUF)
            a.mov_imm("rdx", 6)
            a.mov_imm("rax", NR["read"])
            a.syscall()
            a.store("r14", 8 * (base + 1), "rax")
            a.mov("rdi", "r13")
            a.mov_imm("rax", NR["close"])
            a.syscall()
            a.store("r14", 8 * (base + 2), "rax")

    def emit_ring():
        ring = GuestRing(a, entries=16, base="r9")
        ring.emit_mmap()
        for i, op in enumerate(ops):
            if op[0] == "nanosleep":
                a.lea("rdx", "r14", _TS_BASE + 16 * i)
                ring.push("nanosleep", "rdx", 0)
            elif op[0] == "write":
                ring.push("write", 1, "msg", op[1])
            else:
                ring.push(op[0])
        if with_chain:
            a.lea("rdx", "r14", _READ_BUF)
            s0 = ring.push("open", "path", 0, 0)
            ring.push("read", ring_result(s0), "rdx", 6)
            ring.push("close", ring_result(s0))
        if mode == "ring":
            ring.submit()
        else:
            ring.submit_async(min_complete=n_total)
            ring.wait(n_total)  # signals aside, make "all posted" certain
        for slot in range(n_total):
            ring.load_result("rax", slot)
            a.store("r14", 8 * slot, "rax")

    if mode == "direct":
        emit_direct()
    else:
        emit_ring()
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r14")
    a.mov_imm("rdx", 8 * n_total)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("msg")
    a.db(b"abcdefgh")
    a.label("path")
    a.db(b"/data.bin\x00")
    return image_from_assembler(f"ops_{mode}", a, entry="_start")


def seed_fs(machine):
    machine.fs.create("/data.bin", b"abcdef")


def run_ops(ops, mode, with_chain, *, tool=None, cores=1, superblocks=True):
    return run_guest(
        lambda: build_ops_guest(ops, mode, with_chain),
        tool,
        setup=seed_fs,
        cores=cores,
        machine_opts=None if superblocks else {"superblocks": False},
        max_instructions=4_000_000,
    )


OP = st.one_of(
    st.sampled_from([("getpid",), ("gettid",), ("getppid",), ("getuid",)]),
    st.tuples(st.just("nanosleep"),
              st.sampled_from([100_000, 250_000, 400_000])),
    st.tuples(st.just("write"), st.integers(min_value=1, max_value=8)),
)


@given(ops=st.lists(OP, min_size=1, max_size=10), with_chain=st.booleans())
@settings(max_examples=12, deadline=None)
def test_random_op_lists_drain_identically(ops, with_chain):
    """Any interleaving of blocking and non-blocking ops produces the
    same results buffer, stdout and fs in all three execution modes."""
    reports = {m: run_ops(ops, m, with_chain) for m in MODES}
    for report in reports.values():
        assert not report.crashed
        assert report.exit == 0
    base = reports["direct"]
    for mode in ("ring", "ring_async"):
        diffs = differences(reports[mode], base, compare_trace=False)
        assert not diffs, f"{mode} vs direct: {diffs} (ops={ops})"


#: Fixed op list with blockers sandwiched between non-blockers — the
#: deterministic anchor the full tool/cores/superblock matrix runs on.
FIXED_OPS = [
    ("getpid",),
    ("nanosleep", 300_000),
    ("write", 5),
    ("gettid",),
    ("nanosleep", 150_000),
    ("getuid",),
]

MATRIX = [
    (tool, cores, superblocks)
    for tool in (None, "lazypoline", "zpoline", "ptrace")
    for cores in (1, 2)
    for superblocks in (True, False)
]


@pytest.fixture(scope="module")
def direct_baseline():
    report = run_ops(FIXED_OPS, "direct", True)
    assert not report.crashed and report.exit == 0
    return report


@pytest.mark.parametrize("tool,cores,superblocks", MATRIX)
def test_async_drain_identity_matrix(tool, cores, superblocks,
                                     direct_baseline):
    """The async drain matches the bare direct run in every cell of the
    {tool} x {cores} x {superblocks} matrix."""
    report = run_ops(FIXED_OPS, "ring_async", True, tool=tool, cores=cores,
                     superblocks=superblocks)
    assert not report.crashed
    diffs = differences(report, direct_baseline, compare_trace=False)
    assert not diffs, f"({tool},{cores},{superblocks}): {diffs}"


@pytest.mark.parametrize("tool,cores,superblocks",
                         [(None, 2, False), ("lazypoline", 1, True),
                          ("ptrace", 2, True)])
def test_sync_drain_identity_cells(tool, cores, superblocks,
                                   direct_baseline):
    report = run_ops(FIXED_OPS, "ring", True, tool=tool, cores=cores,
                     superblocks=superblocks)
    assert not report.crashed
    diffs = differences(report, direct_baseline, compare_trace=False)
    assert not diffs, f"({tool},{cores},{superblocks}): {diffs}"
