"""Virtual memory tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MapError, PageFault
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, Perm


@pytest.fixture
def mem():
    return AddressSpace()


def test_map_and_rw(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.write(0x1000, b"abc")
    assert mem.read(0x1000, 3) == b"abc"


def test_cross_page_rw(mem):
    mem.map(0x1000, 3 * PAGE_SIZE, Perm.RW)
    data = bytes(range(256)) * 20
    addr = 0x2000 - 100
    mem.write(addr, data)
    assert mem.read(addr, len(data)) == data


def test_unmapped_read_faults(mem):
    with pytest.raises(PageFault) as exc:
        mem.read(0x5000, 1)
    assert exc.value.address == 0x5000
    assert exc.value.access == "read"


def test_write_to_readonly_faults(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.R)
    with pytest.raises(PageFault):
        mem.write(0x1000, b"x")


def test_exec_requires_x(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    with pytest.raises(PageFault):
        mem.fetch(0x1000, 2)
    mem.protect(0x1000, PAGE_SIZE, Perm.RX)
    assert mem.fetch(0x1000, 2) == b"\x00\x00"


def test_fetch_truncates_at_region_end(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RX)
    data = mem.fetch(0x2000 - 3, 10)
    assert len(data) == 3


def test_kernel_access_bypasses_permissions(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.NONE)
    mem.write(0x1000, b"k", check=None)
    assert mem.read(0x1000, 1, check=None) == b"k"


def test_overlap_map_rejected(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    with pytest.raises(MapError):
        mem.map(0x1000, PAGE_SIZE, Perm.RW)


def test_unaligned_map_rejected(mem):
    with pytest.raises(MapError):
        mem.map(0x1001, PAGE_SIZE, Perm.RW)


def test_protect_unmapped_rejected(mem):
    with pytest.raises(MapError):
        mem.protect(0x1000, PAGE_SIZE, Perm.R)


def test_unmap_then_fault(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.unmap(0x1000, PAGE_SIZE)
    with pytest.raises(PageFault):
        mem.read(0x1000, 1)


def test_map_anywhere_avoids_collisions(mem):
    a = mem.map_anywhere(PAGE_SIZE, Perm.RW, hint=0x10000)
    b = mem.map_anywhere(PAGE_SIZE, Perm.RW, hint=0x10000)
    assert a != b
    assert mem.is_mapped(a) and mem.is_mapped(b)


def test_regions_merge(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RX)
    mem.map(0x2000, PAGE_SIZE, Perm.RX)
    mem.map(0x3000, PAGE_SIZE, Perm.RW)
    regions = mem.regions()
    assert len(regions) == 2
    assert regions[0].start == 0x1000 and regions[0].end == 0x3000
    assert regions[0].perm == Perm.RX


def test_executable_regions(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RX)
    mem.map(0x3000, PAGE_SIZE, Perm.RW)
    assert [r.start for r in mem.executable_regions()] == [0x1000]


def test_fork_copy_is_independent(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.write(0x1000, b"parent")
    clone = mem.fork_copy()
    clone.write(0x1000, b"child!")
    assert mem.read(0x1000, 6) == b"parent"
    assert clone.read(0x1000, 6) == b"child!"


def test_typed_accessors(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.write_u64(0x1000, 0x1122334455667788)
    assert mem.read_u64(0x1000) == 0x1122334455667788
    assert mem.read_u32(0x1000) == 0x55667788
    assert mem.read_u16(0x1000) == 0x7788
    assert mem.read_u8(0x1000) == 0x88
    mem.write_cstr(0x1100, b"hi")
    assert mem.read_cstr(0x1100) == b"hi"


def test_cstr_respects_maxlen(mem):
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.write(0x1000, b"A" * 100)
    assert mem.read_cstr(0x1000, maxlen=10) == b"A" * 10


@given(
    offset=st.integers(min_value=0, max_value=3 * PAGE_SIZE - 1),
    data=st.binary(min_size=1, max_size=PAGE_SIZE),
)
def test_rw_roundtrip_property(offset, data):
    mem = AddressSpace()
    mem.map(0x10000, 4 * PAGE_SIZE, Perm.RW)
    mem.write(0x10000 + offset, data)
    assert mem.read(0x10000 + offset, len(data)) == data


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=30))
def test_map_unmap_sequence_consistency(pages):
    """Mapping then unmapping any page sequence leaves no residue."""
    mem = AddressSpace()
    mapped = set()
    for pn in pages:
        addr = 0x100000 + pn * PAGE_SIZE
        if pn in mapped:
            mem.unmap(addr, PAGE_SIZE)
            mapped.discard(pn)
        else:
            mem.map(addr, PAGE_SIZE, Perm.RW)
            mapped.add(pn)
    for pn in range(64):
        addr = 0x100000 + pn * PAGE_SIZE
        assert mem.is_mapped(addr) == (pn in mapped)
