"""Kernel basics: program execution, syscall ABI, faults, clock."""

from __future__ import annotations

import pytest

from repro.arch.registers import RCX, R11
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.kernel import errno

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image, run_program


def test_hello_world(machine):
    proc, code = run_program(machine, hello_image(b"hi!\n", exit_code=3))
    assert code == 3
    assert proc.stdout == b"hi!\n"


def test_clock_advances(machine):
    run_program(machine, hello_image())
    assert machine.clock > 0
    assert machine.seconds == pytest.approx(machine.clock / 2.1e9)


def test_getpid_gettid_match_for_leader(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.mov("rbx", "rax")
    emit_syscall(a, "gettid")
    a.sub("rax", "rbx")  # tid - pid == 0 for the leader
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    proc, code = run_program(machine, finish(a))
    assert code == 0


def test_nosys_returns_enosys(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 500)
    a.syscall()
    # exit with (negated) errno so the test can observe it
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == errno.ENOSYS


def test_syscall_clobbers_rcx_r11_only(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 111)
    a.mov_imm("r12", 222)
    a.mov_imm("rcx", 333)
    a.mov_imm("r11", 444)
    emit_syscall(a, "getpid")
    # rbx/r12 must survive; rcx/r11 are architecturally clobbered
    a.cmpi("rbx", 111)
    a.jnz("bad")
    a.cmpi("r12", 222)
    a.jnz("bad")
    a.cmpi("rcx", 333)
    a.jz("bad")  # rcx must NOT be 333 anymore
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_rcx_holds_return_rip_after_syscall(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    a.label("after")
    a.mov_imm("rbx", "after")
    a.sub("rcx", "rbx")
    a.mov("rdi", "rcx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_segfault_kills_process(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 0xDEAD0000)
    a.load("rax", "rbx", 0)  # unmapped
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    from repro.kernel.signals import SIGSEGV

    assert proc.term_signal == SIGSEGV


def test_sigill_on_ud2(machine):
    a = asm()
    a.label("_start")
    a.ud2()
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    from repro.kernel.signals import SIGILL

    assert proc.term_signal == SIGILL


def test_argv_passed_to_program(machine):
    # _start receives rdi=argc, rsi=argv; write argv[1] to stdout
    a = asm()
    a.label("_start")
    a.load("rsi", "rsi", 8)  # argv[1]
    a.mov_imm("rdi", 1)
    a.mov_imm("rdx", 4)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    proc, code = run_program(machine, finish(a), argv=("prog", "abcd"))
    assert code == 0
    assert proc.stdout == b"abcd"


def test_brk_allocates(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "brk", 0)
    a.mov("rbx", "rax")  # current brk
    a.mov("rdi", "rbx")
    a.addi("rdi", 0x2000)
    emit_syscall(a, "brk", 0)  # note: emit_syscall resets rdi; redo manually
    proc, code = run_program(machine, finish(a))
    assert code == 0


def test_mmap_munmap_cycle(machine):
    a = asm()
    a.label("_start")
    # mmap(0, 8192, RW, ANON|PRIVATE, -1, 0)
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("rbx", "rax")
    # store + reload through the new mapping
    a.mov_imm("rcx", 0x77)
    a.store("rbx", 100, "rcx")
    a.load("rdx", "rbx", 100)
    a.cmpi("rdx", 0x77)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_mprotect_makes_page_readonly(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("rbx", "rax")
    # mprotect(addr, 4096, PROT_READ)
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["mprotect"])
    a.syscall()
    a.mov_imm("rcx", 1)
    a.store("rbx", 0, "rcx")  # faults: SIGSEGV
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    from repro.kernel.signals import SIGSEGV

    assert proc.term_signal == SIGSEGV


def test_uname(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("rdi", "rax")
    a.mov("rbx", "rax")
    a.mov_imm("rax", NR["uname"])
    a.syscall()
    a.mov("rsi", "rbx")
    a.mov_imm("rdi", 1)
    a.mov_imm("rdx", 5)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    proc, code = run_program(machine, finish(a))
    assert proc.stdout == b"Linux"


def test_syscall_log_when_tracing_enabled(machine):
    machine.kernel.trace_syscalls = True
    run_program(machine, hello_image())
    names = [nr for _tid, nr, _args, _ret in machine.kernel.syscall_log]
    assert NR["write"] in names
    assert NR["exit_group"] in names


def test_deterministic_execution():
    m1 = Machine()
    run_program(m1, hello_image())
    m2 = Machine()
    run_program(m2, hello_image())
    assert m1.clock == m2.clock
