"""Process lifecycle: fork, wait4, clone threads, execve, kill."""

from __future__ import annotations

from repro.kernel.syscalls.table import NR
from repro.kernel import errno
from repro.kernel.syscalls.proc import THREAD_FLAGS, CLONE_VM

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def test_fork_returns_zero_in_child(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    # parent: wait4(-1, status, 0, 0) then exit 10
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 10)
    a.label("child")
    emit_syscall(a, "write", 1, "msg", 6)
    emit_exit(a, 20)
    a.label("msg")
    a.db(b"child\n")
    proc, code = run_program(machine, finish(a))
    assert code == 10
    # parent's stdout buffer is separate from the child's
    assert proc.stdout == b""
    children = [t for t in machine.kernel.tasks.values() if t.parent is proc.task]
    assert len(children) == 1
    assert bytes(children[0].stdout) == b"child\n"
    assert children[0].exit_code == 20


def test_wait4_writes_status(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    a.load("rdi", "r12", 0)
    a.shr("rdi", 8)  # status >> 8 == child exit code
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("child")
    emit_exit(a, 42)
    _proc, code = run_program(machine, finish(a))
    assert code == 42


def test_wait4_echild_without_children(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    _proc, code = run_program(machine, finish(a))
    assert code == errno.ECHILD


def test_fork_memory_is_copied(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rcx", 5)
    a.store("r12", 0, "rcx")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    # parent waits, then reads its copy: must still be 5
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    a.load("rdi", "r12", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("child")
    a.mov_imm("rcx", 9)
    a.store("r12", 0, "rcx")  # child's write must not affect the parent
    emit_exit(a, 0)
    _proc, code = run_program(machine, finish(a))
    assert code == 5


def test_clone_thread_shares_memory(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # clone(THREAD_FLAGS | CLONE_VM, child_stack = r12 + 8192)
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    # parent: spin until the shared flag changes
    a.label("spin")
    a.load("rcx", "r12", 0)
    a.cmpi("rcx", 7)
    a.jnz("spin")
    emit_exit(a, 7)
    a.label("child")
    a.mov_imm("rcx", 7)
    a.store("r12", 0, "rcx")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    proc, code = run_program(machine, finish(a))
    assert code == 7
    threads = proc.threads()
    assert len(threads) == 2
    assert threads[0].pid == threads[1].pid


def test_clone_child_stack_is_honoured(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 4096)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    a.label("spin")
    a.load("rcx", "r12", 8)
    a.cmpi("rcx", 1)
    a.jnz("spin")
    emit_exit(a, 0)
    a.label("child")
    # the child's rsp must be inside the provided stack
    a.mov("rcx", "rsp")
    a.sub("rcx", "r12")
    a.cmpi("rcx", 4096)
    a.jg("bad")
    a.mov_imm("rcx", 1)
    a.store("r12", 8, "rcx")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    a.label("bad")
    a.mov_imm("rcx", 1)
    a.store("r12", 8, "rcx")
    a.mov_imm("rdi", 1)
    a.mov_imm("rax", NR["exit"])
    a.syscall()
    proc, code = run_program(machine, finish(a))
    assert code == 0
    children = [t for t in proc.threads() if t is not proc.task]
    assert children[0].exit_code == 0


def test_execve_replaces_image(machine):
    # target program
    t = asm()
    t.label("_start")
    emit_syscall(t, "write", 1, "m", 4)
    emit_exit(t, 33)
    t.label("m")
    t.db(b"new!")
    target = finish(t, name="target")
    machine.register_binary("/bin/target", target)

    a = asm()
    a.label("_start")
    emit_syscall(a, "execve", "path", 0, 0)
    emit_exit(a, 1)  # only reached if execve failed
    a.label("path")
    a.db(b"/bin/target\x00")
    proc, code = run_program(machine, finish(a))
    assert code == 33
    assert proc.stdout == b"new!"
    assert proc.task.comm == "target"


def test_execve_missing_binary(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "execve", "path", 0, 0)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("path")
    a.db(b"/bin/nothing\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == errno.ENOENT


def test_set_tid_address_cleared_on_exit(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rcx", 0xFF)
    a.store("r12", 0, "rcx")
    a.mov("rdi", "r12")
    a.mov_imm("rax", NR["set_tid_address"])
    a.syscall()
    emit_exit(a, 0)
    proc, _code = run_program(machine, finish(a))
    # The kernel zeroed the u32 at clear_child_tid on exit.
    assert proc.task.mem.read_u32(
        proc.task.clear_child_tid, check=None
    ) == 0


def test_exit_group_kills_all_threads(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("child")
    emit_exit(a, 9)  # exit_group: must take the spinning child down too
    a.label("child")
    a.label("spin")
    a.jmp("spin")
    proc, code = run_program(machine, finish(a))
    assert code == 9
    assert all(not t.alive for t in proc.threads())
