"""Loader and program-image tests."""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.errors import LoaderError
from repro.kernel.machine import Machine
from repro.loader.image import ProgramImage, Segment, image_from_assembler
from repro.loader.loading import VDSO_BASE, build_vdso, load_into
from repro.mem import layout
from repro.mem.pages import PAGE_SIZE, Perm

from tests.conftest import asm, emit_exit, finish


def test_image_from_assembler_symbols_and_entry():
    a = Assembler(base=0x400000)
    a.label("_start")
    a.nop()
    a.label("func")
    a.ret()
    image = image_from_assembler("p", a, entry="func")
    assert image.entry == 0x400001
    assert image.symbols == {"_start": 0x400000, "func": 0x400001}
    assert image.segments[0].perm == Perm.RX


def test_text_segments_filter():
    image = ProgramImage(
        "p",
        [
            Segment(0x1000, b"\x90", Perm.RX),
            Segment(0x2000, b"d", Perm.RW),
        ],
        0x1000,
    )
    assert [s.addr for s in image.text_segments()] == [0x1000]


def test_load_maps_stack_and_vdso(machine):
    a = asm()
    a.label("_start")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    mem = proc.task.mem
    assert mem.is_mapped(VDSO_BASE)
    assert mem.perm_at(VDSO_BASE) == Perm.RX
    assert proc.task.vdso_sigreturn == VDSO_BASE
    assert mem.is_mapped(layout.STACK_TOP - PAGE_SIZE)
    rsp = proc.task.regs.read_name("rsp")
    assert rsp % 16 == 0
    assert layout.STACK_TOP - layout.STACK_SIZE <= rsp < layout.STACK_TOP


def test_vdso_contains_sigreturn_syscall():
    code = build_vdso()
    # mov rax, 15 (5-byte form) followed by syscall
    assert code[0] == 0xB8
    assert code[1] == 15
    assert code[5:7] == b"\x0f\x05"


def test_overlapping_segments_rejected(machine):
    a = Assembler(base=0x400000)
    a.nop()
    image = image_from_assembler("p", a)
    image.segments.append(Segment(0x400000, b"x", Perm.RW))
    from repro.mem.address_space import AddressSpace

    task = machine.kernel.new_task(AddressSpace())
    with pytest.raises(LoaderError):
        load_into(machine.kernel, task, image)


def test_argv_layout(machine):
    a = asm()
    a.label("_start")
    emit_exit(a, 0)
    proc = machine.load(finish(a), argv=("prog", "one", "two"))
    task = proc.task
    assert task.regs.read_name("rdi") == 3  # argc
    argv = task.regs.read_name("rsi")
    ptrs = [task.mem.read_u64(argv + 8 * i, check=None) for i in range(4)]
    strings = [task.mem.read_cstr(p, check=None) for p in ptrs[:3]]
    assert strings == [b"prog", b"one", b"two"]
    assert ptrs[3] == 0  # NULL terminator


def test_extra_data_segment(machine):
    a = Assembler(base=0x400000)
    a.label("_start")
    a.mov_imm("rbx", 0x600000)
    a.load("rdi", "rbx", 0)
    a.mov_imm("rax", 231)
    a.syscall()
    image = image_from_assembler(
        "p",
        a,
        entry="_start",
        extra_segments=[Segment(0x600000, (42).to_bytes(8, "little"), Perm.RW)],
    )
    proc = machine.load(image)
    assert machine.run_process(proc) == 42


def test_register_binary_and_execve_path_normalisation(machine):
    a = asm()
    a.label("_start")
    emit_exit(a, 9)
    image = finish(a, name="thing")
    machine.register_binary("//bin//thing", image)
    assert machine.kernel.binaries["/bin/thing"] is image


def test_brk_base_above_loaded_segments(machine):
    a = asm()
    a.label("_start")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    assert proc.task.brk_base > 0x400000


def test_two_processes_have_independent_memory(machine):
    a = asm()
    a.label("_start")
    emit_exit(a, 1)
    p1 = machine.load(finish(a))
    p2 = machine.load(finish(a))
    p1.task.mem.write(0x400000, b"\xcc", check=None)
    assert p2.task.mem.read(0x400000, 1, check=None) != b"\xcc"
    assert p1.pid != p2.pid
