"""Cross-tool conformance: every mechanism must be behaviour-preserving.

The strongest property an interposer can violate silently is program
semantics.  This matrix runs each modelled coreutil natively and under each
expressive mechanism and requires identical observable behaviour (exit
code, stdout, filesystem effects) — plus, for the exhaustive mechanisms,
identical syscall traces.
"""

from __future__ import annotations

import pytest

from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.ptrace_tool import PtraceTool
from repro.interpose.seccomp_user_tool import SeccompUserTool
from repro.interpose.sud_tool import SudTool
from repro.interpose.zpoline import Zpoline
from repro.kernel.machine import Machine
from repro.workloads.coreutils import COREUTIL_NAMES, build_coreutil, setup_fs

TOOLS = {
    "zpoline": Zpoline,
    "lazypoline": Lazypoline,
    "sud": SudTool,
    "seccomp_user": SeccompUserTool,
    "ptrace": PtraceTool,
}


def _run(name: str, tool_name: str | None):
    machine = Machine()
    setup_fs(machine)
    process = machine.load(build_coreutil(name))
    tracer = TraceInterposer()
    if tool_name is not None:
        TOOLS[tool_name]._install(machine, process, tracer)
    machine.run(until=lambda: not process.alive, max_instructions=3_000_000)
    fs_snapshot = sorted(
        (inode.path, bytes(inode.data))
        for inode in machine.fs._inodes.values()
        if not inode.is_dir
    )
    return {
        "exit": process.exit_code,
        "signal": process.term_signal,
        "stdout": process.stdout,
        "fs": fs_snapshot,
        "trace": tracer.names,
    }


@pytest.mark.parametrize("tool_name", sorted(TOOLS))
@pytest.mark.parametrize("util", COREUTIL_NAMES)
def test_behaviour_preserved(util, tool_name):
    native = _run(util, None)
    interposed = _run(util, tool_name)
    assert interposed["exit"] == native["exit"] == 0
    assert interposed["signal"] is None
    assert interposed["stdout"] == native["stdout"]
    assert interposed["fs"] == native["fs"]
    assert interposed["trace"]  # something was actually intercepted


@pytest.mark.parametrize("util", COREUTIL_NAMES)
def test_exhaustive_mechanisms_agree_on_traces(util):
    """lazypoline, SUD and seccomp-user see the identical syscall stream."""
    traces = {
        tool: _run(util, tool)["trace"]
        for tool in ("lazypoline", "sud", "seccomp_user")
    }
    assert traces["lazypoline"] == traces["sud"] == traces["seccomp_user"]


# --------------------------------------------------- differential fault oracle
#
# The tests above compare tools on the one cooperative happy-path schedule.
# The differential oracle re-runs the comparison under seeded adversarial
# schedules (perturbed quanta, shuffled run order) over a corpus that
# exercises fork/clone/execve/sigaction — the operations whose interaction
# with each interposition mechanism is schedule-sensitive.  Equivalence is
# still total: exit status, stdout, filesystem effects and the per-thread
# syscall trace must agree for every full-expressiveness tool pair.

from repro.faults import CORPUS, ExplorerPolicy, differences, run_guest

DIFFERENTIAL_SEEDS = range(8)


@pytest.mark.faults
@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
@pytest.mark.parametrize("program_name", sorted(CORPUS))
def test_tools_equivalent_under_adversarial_schedules(program_name, seed):
    """Full-expressiveness tool pairs stay equivalent on explored schedules."""
    program = CORPUS[program_name]
    reports = {}
    for tool in program.tools:
        reports[tool] = run_guest(
            program.build,
            tool,
            policy=ExplorerPolicy(seed),
            setup=program.setup,
            max_instructions=program.max_instructions,
        )
        assert not reports[tool].crashed, f"{tool}: guest did not terminate"
    tools = list(program.tools)
    for i, ta in enumerate(tools):
        for tb in tools[i + 1:]:
            diffs = differences(reports[ta], reports[tb])
            assert not diffs, (
                f"{program_name} seed {seed}, {ta} vs {tb}: {diffs}\n"
                f"  reproduce: pytest 'tests/test_cross_tool_matrix.py::"
                f"test_tools_equivalent_under_adversarial_schedules"
                f"[{program_name}-{seed}]'"
            )


@pytest.mark.smp
@pytest.mark.parametrize("program_name", sorted(CORPUS))
def test_lazypoline_vs_ptrace_on_two_cores(program_name):
    """The oracle also holds across cores: lazypoline and ptrace at
    ``cores=2`` preserve behaviour, and each tool's 2-core run is fully
    identical (trace included) to its own 1-core run.

    ptrace is not in the corpus tool sets because it lacks full
    expressiveness (Table I: it cannot guarantee the identical per-thread
    syscall stream the exhaustive mechanisms produce), so the cross-tool
    leg compares behaviour only.
    """
    program = CORPUS[program_name]
    reports = {
        (tool, cores): run_guest(
            program.build,
            tool,
            setup=program.setup,
            cores=cores,
            max_instructions=program.max_instructions,
        )
        for tool in ("lazypoline", "ptrace")
        for cores in (1, 2)
    }
    for report in reports.values():
        assert not report.crashed
    for tool in ("lazypoline", "ptrace"):
        diffs = differences(reports[tool, 1], reports[tool, 2])
        assert not diffs, f"{program_name}: {tool} diverges on 2 cores: {diffs}"
    diffs = differences(
        reports["lazypoline", 2], reports["ptrace", 2], compare_trace=False
    )
    assert not diffs, f"{program_name} lazypoline vs ptrace @2 cores: {diffs}"
