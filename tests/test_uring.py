"""Unit tests for the syscall-aggregation ring (repro.kernel.uring).

Two harness styles:

* **kernel-level** — build a machine, hand-write a ring into task memory,
  and call ``ring_enter`` through ``Kernel.dispatch`` directly: precise
  control over headers/SQEs for validation, allowlist, link, and
  fault-injection semantics;
* **guest-level** — run assembly guests using ``repro.libc.uring``'s
  :class:`GuestRing` for the paths that need real execution: blocking
  entries, signals arriving mid-drain, interposition tools.
"""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.arch.registers import to_signed
from repro.faults.injector import FaultInjector, FaultRule
from repro.faults.scenarios import arm_repeating_signal, build_uring_signal_guest
from repro.interpose.registry import attach
from repro.interpose.api import TraceInterposer, passthrough_interposer
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.signals import SIGUSR1
from repro.kernel.syscalls.table import NR
from repro.kernel.uring import (
    HDR_CQ_CAP,
    HDR_CQ_TAIL,
    HDR_SQ_CAP,
    HDR_SQ_HEAD,
    HDR_SQ_TAIL,
    MAX_ENTRIES,
    SQE_ARGS,
    SQE_SYSNO,
    SQE_USER_DATA,
    cqe_offset,
    ring_result,
    sqe_offset,
)
from repro.libc.uring import GuestRing, ring_size
from repro.loader.image import image_from_assembler
from repro.mem import layout
from repro.mem.pages import Perm
from repro.obs import events as K
from repro.obs.tracer import Tracer

pytestmark = pytest.mark.uring

RING_ENTER = NR["ring_enter"]


# ------------------------------------------------------------ kernel harness
def idle_machine(**kwargs):
    """A machine with one live task that never needs to run guest code."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    machine = Machine(**kwargs)
    process = machine.load(image_from_assembler("idle", a, entry="_start"))
    return machine, process.task


class RingMem:
    """Hand-written ring in task memory, driven via Kernel.dispatch."""

    def __init__(self, machine, task, entries=8):
        self.machine = machine
        self.task = task
        self.entries = entries
        self.addr = task.mem.map_anywhere(
            (ring_size(entries) + 4095) & ~4095, Perm.RW
        )
        self.w64(HDR_SQ_CAP, entries)
        self.w64(HDR_CQ_CAP, entries)

    def w64(self, off, value):
        self.task.mem.write_u64(self.addr + off, value & (2**64 - 1),
                                check=None)

    def r64(self, off):
        return self.task.mem.read_u64(self.addr + off, check=None)

    def push(self, slot, name, *args, user_data=0):
        base = sqe_offset(slot)
        sysno = NR[name] if isinstance(name, str) else name
        self.w64(base + SQE_SYSNO, sysno)
        for k in range(6):
            self.w64(base + SQE_ARGS + 8 * k,
                     args[k] if k < len(args) else 0)
        self.w64(base + SQE_USER_DATA, user_data)

    def enter(self, to_submit=0):
        return self.machine.kernel.dispatch(
            self.task, RING_ENTER, (self.addr, to_submit, 0, 0, 0, 0)
        )

    def result(self, slot):
        return to_signed(self.r64(cqe_offset(self.entries, slot)))

    def user_data(self, slot):
        return self.r64(cqe_offset(self.entries, slot) + 8)


def test_drain_executes_entries_and_posts_results():
    machine, task = idle_machine()
    ring = RingMem(machine, task)
    ring.push(0, "getpid", user_data=0xAA)
    ring.push(1, "gettid", user_data=0xBB)
    ring.push(2, "getppid")
    ring.w64(HDR_SQ_TAIL, 3)
    assert ring.enter() == 3
    assert ring.result(0) == task.pid
    assert ring.result(1) == task.tid
    assert ring.result(2) == 0
    assert ring.user_data(0) == 0xAA
    assert ring.user_data(1) == 0xBB
    assert ring.r64(HDR_SQ_HEAD) == 3
    assert ring.r64(HDR_CQ_TAIL) == 3
    # A second enter with nothing new submitted is a no-op.
    assert ring.enter() == 0


def test_per_entry_errno_does_not_stop_the_drain():
    machine, task = idle_machine()
    ring = RingMem(machine, task)
    ring.push(0, "lseek", 999, 0, 0)  # EBADF
    ring.push(1, "getpid")
    ring.w64(HDR_SQ_TAIL, 2)
    assert ring.enter() == 2
    assert ring.result(0) == -errno.EBADF
    assert ring.result(1) == task.pid


def test_non_ringable_syscalls_complete_with_einval():
    machine, task = idle_machine()
    ring = RingMem(machine, task)
    for slot, name in enumerate(("fork", "execve", "rt_sigreturn",
                                 "ring_enter", "mmap")):
        ring.push(slot, name)
    ring.push(5, 123456)  # garbage sysno
    ring.w64(HDR_SQ_TAIL, 6)
    assert ring.enter() == 6
    for slot in range(6):
        assert ring.result(slot) == -errno.EINVAL


def test_result_links_resolve_and_cancel():
    machine, task = idle_machine()
    machine.fs.create("/data.bin", b"abcdef")
    path = task.mem.map_anywhere(4096, Perm.RW)
    task.mem.write(path, b"/data.bin\x00", check=None)
    buf = path + 128
    ring = RingMem(machine, task)
    ring.push(0, "open", path, 0, 0)
    ring.push(1, "read", ring_result(0), buf, 6)   # fd from slot 0
    ring.push(2, "close", ring_result(0))
    ring.push(3, "lseek", 999, 0, 0)               # fails with EBADF
    ring.push(4, "close", ring_result(3))          # linked to a failure
    ring.w64(HDR_SQ_TAIL, 5)
    assert ring.enter() == 5
    assert ring.result(0) >= 3
    assert ring.result(1) == 6
    assert task.mem.read(buf, 6, check=None) == b"abcdef"
    assert ring.result(2) == 0
    assert ring.result(3) == -errno.EBADF
    assert ring.result(4) == -errno.ECANCELED


def test_header_validation():
    machine, task = idle_machine()
    ring = RingMem(machine, task)
    ring.push(0, "getpid")

    ring.w64(HDR_SQ_CAP, 0)  # zero capacity
    ring.w64(HDR_SQ_TAIL, 1)
    assert ring.enter() == -errno.EINVAL

    ring.w64(HDR_SQ_CAP, MAX_ENTRIES + 1)  # oversized
    assert ring.enter() == -errno.EINVAL

    ring.w64(HDR_SQ_CAP, 8)
    ring.w64(HDR_CQ_CAP, 4)  # capacity mismatch
    assert ring.enter() == -errno.EINVAL

    ring.w64(HDR_CQ_CAP, 8)
    ring.w64(HDR_SQ_HEAD, 5)
    ring.w64(HDR_SQ_TAIL, 2)  # tail behind head
    assert ring.enter() == -errno.EINVAL

    ring.w64(HDR_SQ_HEAD, 0)
    ring.w64(HDR_SQ_TAIL, 9)  # more pending than capacity
    assert ring.enter() == -errno.EINVAL

    # Unmapped ring address.
    kernel = machine.kernel
    assert kernel.dispatch(task, RING_ENTER,
                           (0xDEAD0000, 0, 0, 0, 0, 0)) == -errno.EFAULT


def test_to_submit_caps_the_drain():
    machine, task = idle_machine()
    ring = RingMem(machine, task)
    for slot in range(4):
        ring.push(slot, "getpid")
    ring.w64(HDR_SQ_TAIL, 4)
    assert ring.enter(to_submit=2) == 2
    assert ring.r64(HDR_SQ_HEAD) == 2
    assert ring.enter() == 2  # the remainder
    assert ring.r64(HDR_SQ_HEAD) == 4


def test_fault_injection_applies_per_entry():
    machine, task = idle_machine()
    machine.kernel.fault_injector = FaultInjector(
        rules=[FaultRule(errno=errno.EIO, name="getpid", max_injections=1)]
    )
    ring = RingMem(machine, task)
    ring.push(0, "getpid")
    ring.push(1, "getpid")
    ring.w64(HDR_SQ_TAIL, 2)
    assert ring.enter() == 2
    assert ring.result(0) == -errno.EIO   # injected
    assert ring.result(1) == task.pid     # budget exhausted


def test_seccomp_filters_run_per_entry():
    machine, task = idle_machine()
    process = type("P", (), {"task": task})()
    attach(machine, process, "seccomp_bpf",
           denylist=[NR["mkdir"]], errno_value=errno.EACCES)
    ring = RingMem(machine, task)
    path = task.mem.map_anywhere(4096, Perm.RW)
    task.mem.write(path, b"/newdir\x00", check=None)
    ring.push(0, "mkdir", path, 0o755)
    ring.push(1, "getpid")
    ring.w64(HDR_SQ_TAIL, 2)
    assert ring.enter() == 2
    assert ring.result(0) == -errno.EACCES
    assert ring.result(1) == task.pid
    assert not machine.fs.exists("/newdir")


def test_ring_obs_events_and_cycle_attribution():
    tracer = Tracer()
    machine, task = idle_machine(tracer=tracer)
    ring = RingMem(machine, task)
    ring.push(0, "getpid", user_data=7)
    ring.push(1, "lseek", 999, 0, 0)
    ring.w64(HDR_SQ_TAIL, 2)
    assert ring.enter() == 2
    enters = [e for e in tracer.events if e.kind == K.RING_ENTER]
    entries = [e for e in tracer.events if e.kind == K.RING_ENTRY]
    assert len(enters) == 1 and tracer.ring_enters == 1
    assert len(entries) == 2 and tracer.ring_entries == 2
    assert enters[0].data["submitted"] == 2
    assert enters[0].data["completed"] == 2
    assert [e.data["name"] for e in entries] == ["getpid", "lseek"]
    assert entries[0].data["user_data"] == 7
    assert entries[1].data["errno"] == errno.EBADF
    # Every entry has attributable cycles and they sum within the drain.
    assert all(e.data["cycles"] > 0 for e in entries)
    assert sum(e.data["cycles"] for e in entries) <= enters[0].data["cycles"]
    # The per-entry dispatches also appear as ordinary syscall events,
    # followed by the ring_enter crossing itself.
    names = [e.data["name"] for e in tracer.events if e.kind == K.SYSCALL]
    assert names == ["getpid", "lseek", "ring_enter"]


# ------------------------------------------------------------- guest harness
def test_blocking_entry_blocks_cooperatively():
    """A nanosleep SQE parks the drain until simulated time advances."""
    machine, task = idle_machine()
    mem = task.mem
    req = mem.map_anywhere(4096, Perm.RW)
    mem.write_u64(req, 0, check=None)          # tv_sec
    mem.write_u64(req + 8, 500_000, check=None)  # tv_nsec
    ring = RingMem(machine, task)
    ring.push(0, "nanosleep", req, 0)
    ring.push(1, "getpid")
    ring.w64(HDR_SQ_TAIL, 2)
    before = machine.clock
    assert ring.enter() == 2
    assert ring.result(0) == 0
    assert ring.result(1) == task.pid
    # 500us at 2.1 GHz ~ 1.05M cycles: time genuinely advanced.
    assert machine.clock - before > 1_000_000


@pytest.mark.parametrize("tool", [None, "lazypoline", "zpoline"])
def test_signal_mid_drain_partial_cq_and_resume(tool):
    """A signal interrupts the drain like a blocking syscall: the blocked
    entry completes with -EINTR, the drain stops with a partial CQ, the
    handler runs, and the guest's re-enter finishes the remainder —
    never a lost wakeup, identically under interposition."""
    tracer = Tracer()
    machine = Machine(tracer=tracer)
    process = machine.load(build_uring_signal_guest())
    if tool is not None:
        attach(machine, process, tool, interposer=passthrough_interposer)
    arm_repeating_signal(machine, process.task)
    machine.run()
    assert process.task.exit_code == 15
    # The drain was genuinely split: more crossings than the one batch,
    # and the partial enter completed fewer entries than submitted.
    enters = [e.data for e in tracer.events if e.kind == K.RING_ENTER]
    assert len(enters) >= 2
    assert any(e["completed"] < e["submitted"] for e in enters)
    assert sum(e["completed"] for e in enters) == 3
    entries = [e.data for e in tracer.events if e.kind == K.RING_ENTRY]
    assert [e["name"] for e in entries] == ["getpid", "read", "getpid"]
    assert entries[1]["errno"] == errno.EINTR


def test_single_crossing_under_lazypoline():
    """N entries drain through ONE interposed crossing: one rewrite, one
    sled transit — while the obs stream still attributes every entry."""
    tracer = Tracer()
    machine = Machine(tracer=tracer)
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    ring = GuestRing(a, entries=16, base="r9")
    ring.emit_mmap()
    for _ in range(16):
        ring.push("getpid")
    ring.submit()
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    image = image_from_assembler("ring16", a, entry="_start")
    process = machine.load(image)
    interposer = TraceInterposer(tracer=tracer)
    attach(machine, process, "lazypoline", interposer=interposer)
    machine.run()
    assert tracer.ring_enters == 1
    assert tracer.ring_entries == 16
    # The tool saw ring_enter, not 16 getpids.
    assert interposer.count("ring_enter") == 1
    assert interposer.count("getpid") == 0
    # All 16 dispatches are still individually visible to the kernel obs.
    getpids = [e for e in tracer.events
               if e.kind == K.SYSCALL and e.data["name"] == "getpid"]
    assert len(getpids) == 16
