"""Cluster sessions + the async serving leg (satellite of the async-ring
PR).

Two contracts on top of the base cluster suite:

* **Determinism with the async drain.**  The same ``(shards, smp_seed,
  policy, batched="async", sessions)`` must produce a byte-identical
  merged report whether the shards run in forked host processes or
  inline in one process — parked entries, out-of-order completions and
  the session surcharge schedule are all simulated time, so nothing
  host-side may leak in.

* **Policy divergence through shared state.**  With sessions enabled the
  balancing policies must differ on *performance*, not just per-shard
  counts: sticky ``consistent_hash`` keeps sessions home (zero
  migrations), ``round_robin`` sprays them (migrations on most
  requests), and the miss surcharge turns that difference into
  throughput/latency deltas the merged report exposes.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster, LoadBalancer, session_of

pytestmark = [pytest.mark.cluster, pytest.mark.uring_async]

REQUESTS = 40
WARMUP = 4
#: per-request client think time long enough that every steady-state read
#: wave parks (see test_uring_async: events only fire at blocking waits
#: and slice boundaries, so short delays would complete reads eagerly)
CLIENT_CYCLES = 120_000


def session_cluster(policy, *, processes=False, **kw):
    kw.setdefault("shards", 2)
    kw.setdefault("batched", "async")
    kw.setdefault("sessions", 6)
    kw.setdefault("session_miss_cycles", 40_000)
    return Cluster(policy=policy, processes=processes, **kw)


def serve(cluster):
    return cluster.serve(
        requests=REQUESTS,
        warmup=WARMUP,
        connections=4,
        client_cycles_per_request=CLIENT_CYCLES,
    )


# ------------------------------------------------------------ balancer model
def test_session_of_is_stable_and_in_range():
    ids = [session_of(i, 6) for i in range(64)]
    assert ids == [session_of(i, 6) for i in range(64)]
    assert set(ids) <= set(range(6))
    assert len(set(ids)) > 1  # hash spreads, not a constant


def test_consistent_hash_sessions_never_migrate():
    lb = LoadBalancer(4, "consistent_hash")
    lb.plan(200, sessions=10)
    stats = lb.session_stats()
    assert stats["migrations"] == 0
    assert stats["misses"] == stats["distinct_sessions"]
    assert stats["hits"] == 200 - stats["misses"]


def test_round_robin_sessions_migrate_heavily():
    lb = LoadBalancer(4, "round_robin")
    lb.plan(200, sessions=10)
    stats = lb.session_stats()
    assert stats["migrations"] > 100, stats
    assert stats["sticky_ratio"] < 0.5


def test_least_conn_miss_penalty_skews_assignments():
    # with the penalty feeding back into occupancy, least_conn must leave
    # the pure round-robin orbit it holds on homogeneous sessionless shards
    rr = LoadBalancer(4, "round_robin")
    rr.plan(200, sessions=10)
    lc = LoadBalancer(4, "least_conn")
    lc.plan(200, sessions=10)
    assert lc.assignments != rr.assignments


def test_sessionless_plan_unchanged_by_session_plumbing():
    legacy = LoadBalancer(3, "least_conn")
    legacy_counts = legacy.plan(90)
    again = LoadBalancer(3, "least_conn")
    assert again.plan(90, sessions=0) == legacy_counts
    assert again.assignments == legacy.assignments
    assert all(e is None for e in again.session_events)


def test_miss_schedule_aligns_with_per_shard_order():
    lb = LoadBalancer(2, "round_robin")
    counts = lb.plan(30, sessions=4)
    extra = lb.miss_schedule(1000)
    assert [len(x) for x in extra] == counts
    flagged = sum(1 for x in extra for cycles in x if cycles)
    stats = lb.session_stats()
    assert flagged == stats["misses"] + stats["migrations"]


# ------------------------------------------------------- report determinism
@pytest.mark.parametrize("policy", ["round_robin", "consistent_hash"])
def test_async_session_report_identical_fork_vs_inline(policy):
    forked = serve(session_cluster(policy, processes=True))
    inline = serve(session_cluster(policy, processes=False))
    assert json.dumps(forked, sort_keys=True) == json.dumps(
        inline, sort_keys=True
    )


def test_async_session_report_identical_across_repeats():
    a = serve(session_cluster("least_conn"))
    b = serve(session_cluster("least_conn"))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_sessionless_report_has_no_session_keys():
    report = serve(session_cluster("round_robin", sessions=0))
    assert "sessions" not in report
    assert "session_stats" not in report
    assert "session_miss_cycles" not in report


# ------------------------------------------------------- policy divergence
@pytest.fixture(scope="module")
def policy_reports():
    return {
        policy: serve(session_cluster(policy))
        for policy in ("round_robin", "least_conn", "consistent_hash")
    }


def test_async_leg_actually_parks_on_every_policy(policy_reports):
    for policy, report in policy_reports.items():
        obs = report["obs"]
        assert obs["ring_parks"] > 0, policy
        assert obs["ring_completes"] == obs["ring_parks"], policy
        assert report["batched"] == "async"


def test_policies_diverge_on_session_stats(policy_reports):
    sticky = policy_reports["consistent_hash"]["session_stats"]
    sprayed = policy_reports["round_robin"]["session_stats"]
    assert sticky["migrations"] == 0
    assert sprayed["migrations"] > 0
    assert sticky["sticky_ratio"] > sprayed["sticky_ratio"]


def test_policies_diverge_beyond_counts(policy_reports):
    # the surcharge must show up in the performance numbers: the three
    # policies may not all agree on latency or throughput
    perf = {
        policy: (
            round(report["requests_per_sec"], 3),
            report["latency_p95_cycles"],
            report["latency_p99_cycles"],
        )
        for policy, report in policy_reports.items()
    }
    assert len(set(perf.values())) > 1, perf
    # and specifically least_conn and consistent_hash each differ from
    # round_robin, not merely from each other
    assert perf["least_conn"] != perf["round_robin"]
    assert perf["consistent_hash"] != perf["round_robin"]


def test_migration_surcharge_moves_latency(policy_reports):
    # round_robin pays the migration surcharge on most requests; sticky
    # routing avoids it, so its p95 must not be worse
    assert (
        policy_reports["consistent_hash"]["latency_p95_cycles"]
        <= policy_reports["round_robin"]["latency_p95_cycles"]
    )
