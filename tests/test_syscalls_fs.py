"""Filesystem syscall tests (driven from guest programs)."""

from __future__ import annotations

from repro.kernel.syscalls.table import NR
from repro.kernel import errno

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def test_open_read_write_close(machine):
    machine.fs.create("/data/in.txt", b"ABCDEFGH")
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)  # O_RDONLY
    a.mov("rbx", "rax")  # fd
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")  # writable buffer
    # read(fd, buf, 4)
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 4)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    # write(1, buf, 4)
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 4)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    # close(fd)
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["close"])
    a.syscall()
    # a second read on the closed fd must fail with EBADF
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    a.cmpi("rax", -errno.EBADF)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/data/in.txt\x00")
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.stdout == b"ABCD"


def test_open_missing_file_enoent(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("path")
    a.db(b"/no/such\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == errno.ENOENT


def test_fs_host_api():
    from repro.kernel.fs import SimFS

    fs = SimFS()
    fs.create("/a/b/c.txt", b"xyz")
    assert fs.exists("/a/b/c.txt")
    assert fs.lookup("/a/b/c.txt").data == b"xyz"
    assert fs.listdir("/a") == ["b"]
    assert fs.listdir("/a/b") == ["c.txt"]
    assert fs.mkdir("/a/b") == -errno.EEXIST
    assert fs.rename("/a/b/c.txt", "/a/d.txt") == 0
    assert not fs.exists("/a/b/c.txt")
    assert fs.unlink("/a/d.txt") == 0
    assert fs.rmdir("/a/b") == 0
    assert fs.rmdir("/a") == 0


def test_fs_rmdir_nonempty():
    from repro.kernel.fs import SimFS

    fs = SimFS()
    fs.create("/dir/file", b"")
    assert fs.rmdir("/dir") == -errno.ENOTEMPTY


def test_fs_chmod():
    from repro.kernel.fs import SimFS

    fs = SimFS()
    fs.create("/f", b"")
    assert fs.chmod("/f", 0o600) == 0
    assert fs.lookup("/f").mode == 0o600
    assert fs.chmod("/nope", 0o600) == -errno.ENOENT


def test_normalize_paths():
    from repro.kernel.fs import SimFS

    assert SimFS.normalize("a/b") == "/a/b"
    assert SimFS.normalize("/a//b/./c/..") == "/a/b"


def _rw_program(machine, path_bytes: bytes, flags: int, payload: bytes):
    """Open with flags, write payload, read it back via pread, print it."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", flags, 0o644)
    a.mov("rbx", "rax")
    # write(fd, data, len)
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", "data")
    a.mov_imm("rdx", len(payload))
    a.mov_imm("rax", NR["write"])
    a.syscall()
    # pread64(fd, heap, len, 0) — read into a writable mmap
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rdx", len(payload))
    a.mov_imm("r10", 0)
    a.mov_imm("rax", NR["pread64"])
    a.syscall()
    # write(1, heap, len)
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", len(payload))
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    a.label("path")
    a.db(path_bytes + b"\x00")
    a.label("data")
    a.db(payload)
    return finish(a)


def test_create_write_pread(machine):
    from repro.kernel.fs import O_CREAT, O_RDWR

    img = _rw_program(machine, b"/out.bin", O_CREAT | O_RDWR, b"PAYLOAD!")
    proc, code = run_program(machine, img)
    assert code == 0
    assert proc.stdout == b"PAYLOAD!"
    assert machine.fs.lookup("/out.bin").data == b"PAYLOAD!"


def test_lseek_and_stat(machine):
    machine.fs.create("/f", b"0123456789")
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)
    a.mov("rbx", "rax")
    # lseek(fd, 4, SEEK_SET)
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 4)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["lseek"])
    a.syscall()
    a.cmpi("rax", 4)
    a.jnz("bad")
    # fstat(fd, buf) then check size field == 10
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rax", NR["fstat"])
    a.syscall()
    a.load("rcx", "r12", 0)  # st_size
    a.cmpi("rcx", 10)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("path")
    a.db(b"/f\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_pipe_roundtrip(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # pipe(fds @ r12)
    a.mov("rdi", "r12")
    a.mov_imm("rax", NR["pipe"])
    a.syscall()
    # write(fds[1], msg, 3) — fds are small, one byte is plenty
    a.load8("r13", "r12", 0)  # read end
    a.load8("rdi", "r12", 4)  # write end
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 3)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    # read(fds[0], buf@r12+100, 3)
    a.mov("rdi", "r13")
    a.lea("rsi", "r12", 100)
    a.mov_imm("rdx", 3)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    # write(1, buf, 3)
    a.mov_imm("rdi", 1)
    a.lea("rsi", "r12", 100)
    a.mov_imm("rdx", 3)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    a.label("msg")
    a.db(b"xyz")
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.stdout == b"xyz"


def test_getdents64_lists_directory(machine):
    machine.fs.create("/dir/a", b"")
    machine.fs.create("/dir/b", b"")
    machine.fs.makedirs("/dir/sub")
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)
    a.mov("rbx", "rax")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 4096)
    a.mov_imm("rax", NR["getdents64"])
    a.syscall()
    a.mov("rdi", "rax")  # bytes written as exit code (sanity > 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("path")
    a.db(b"/dir\x00")
    proc, code = run_program(machine, finish(a))
    assert code > 0
    # host-side: verify the names are in the buffer
    task = proc.task
    # find the mmap region and check names appear
    blob = b"".join(
        task.mem.read(r.start, r.size, check=None)
        for r in task.mem.regions()
    )
    assert b"a" in blob and b"b" in blob and b"sub" in blob


def test_dup_and_fcntl(machine):
    machine.fs.create("/f", b"Z")
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "path", 0, 0)
    a.mov("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["dup"])
    a.syscall()
    a.mov("r12", "rax")  # dup'd fd
    # read 1 byte through the dup
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("rsi", "rax")
    a.mov("rdi", "r12")
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("path")
    a.db(b"/f\x00")
    _proc, code = run_program(machine, finish(a))
    assert code == 1  # one byte read through the duplicate
