"""Tests for the asynchronous ring drain (RING_ENTER_ASYNC).

Same two harness styles as ``test_uring.py``:

* **kernel-level** — hand-written rings driven through ``Kernel.dispatch``
  with the async flag: parking, out-of-order CQE posting, dependency
  links onto parked slots, ``min_complete`` waits, wakeup delivery;
* **guest-level** — assembly guests using :class:`GuestRing`'s async API
  (``submit_async``/``wait``/completion callbacks) plus the event-loop
  webserver leg, whose whole point is one worker overlapping many
  in-flight blocking I/Os.
"""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.arch.registers import to_signed
from repro.faults.scenarios import (
    arm_pipe_feeder,
    arm_repeating_signal,
    build_uring_async_guest,
)
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.seccomp import SECCOMP_RET_TRAP
from repro.kernel.seccomp.filter import FilterBuilder
from repro.kernel.signals import SIGSYS
from repro.kernel.syscalls.table import NR
from repro.kernel.uring import (
    HDR_CQ_TAIL,
    HDR_SQ_HEAD,
    HDR_SQ_TAIL,
    RING_ENTER_ASYNC,
    SQE_SYSNO,
    ring_result,
    sqe_offset,
)
from repro.libc.uring import GuestRing
from repro.loader.image import image_from_assembler
from repro.mem import layout
from repro.mem.pages import Perm
from repro.obs import events as K
from repro.obs.tracer import Tracer

from test_uring import RingMem, idle_machine

pytestmark = [pytest.mark.uring, pytest.mark.uring_async]

RING_ENTER = NR["ring_enter"]


class AsyncRingMem(RingMem):
    """RingMem with the full four-argument ``ring_enter`` ABI exposed."""

    def enter(self, to_submit=0, min_complete=0, flags=RING_ENTER_ASYNC):
        return self.machine.kernel.dispatch(
            self.task, RING_ENTER,
            (self.addr, to_submit, min_complete, flags, 0, 0),
        )

    def enter_blocking(self, to_submit=0, min_complete=0,
                       flags=RING_ENTER_ASYNC):
        return self.machine.kernel.dispatch_blocking(
            self.task, RING_ENTER,
            (self.addr, to_submit, min_complete, flags, 0, 0),
        )


def make_pipe(machine, task):
    """pipe() through the kernel; returns (read_fd, write_fd)."""
    addr = task.mem.map_anywhere(4096, Perm.RW)
    assert machine.kernel.dispatch(task, NR["pipe"],
                                   (addr, 0, 0, 0, 0, 0)) == 0
    packed = task.mem.read_u64(addr, check=None)
    return packed & 0xFFFFFFFF, packed >> 32


def feed_pipe(machine, task, wfd, data=b"!"):
    buf = task.mem.map_anywhere(4096, Perm.RW)
    task.mem.write(buf, data, check=None)
    assert machine.kernel.dispatch(
        task, NR["write"], (wfd, buf, len(data), 0, 0, 0)) == len(data)


# ----------------------------------------------------------- kernel level
def test_blocking_entry_parks_and_drain_continues():
    """A read on an empty pipe no longer stalls the drain: later entries
    complete first, their CQEs posting out of submission order."""
    machine, task = idle_machine()
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "getpid", user_data=0xA0)
    ring.push(1, "read", rfd, buf, 8, user_data=0xA1)
    ring.push(2, "getpid", user_data=0xA2)
    ring.w64(HDR_SQ_TAIL, 3)
    # The async enter consumes all three but completes only the getpids.
    assert ring.enter() == 2
    assert ring.r64(HDR_SQ_HEAD) == 3
    assert ring.r64(HDR_CQ_TAIL) == 2
    assert ring.result(0) == task.pid
    assert ring.result(2) == task.pid
    assert ring.result(1) == 0  # parked: CQE slot untouched
    assert len(task.ring_waiters) == 1
    assert task.ring_waiters[0].slot == 1
    assert task.ring_parked_peak == 1
    # Re-entering with nothing new merely drives the parked entries — the
    # pipe is still empty, so nothing completes.
    assert ring.enter() == 0
    assert len(task.ring_waiters) == 1
    # Feed the pipe; the next safe point posts the parked CQE.
    feed_pipe(machine, task, wfd, b"hello")
    assert ring.enter() == 1
    assert ring.r64(HDR_CQ_TAIL) == 3
    assert ring.result(1) == 5
    assert ring.user_data(1) == 0xA1
    assert task.mem.read(buf, 5, check=None) == b"hello"
    assert not task.ring_waiters


def test_dependent_entry_parks_until_its_link_resolves():
    """An entry whose result link targets a parked slot parks as a
    dependent and executes — gate included — once the link resolves."""
    machine, task = idle_machine()
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "read", rfd, buf, 64)
    # write(stdout) as many bytes as the read returned: depends on slot 0.
    ring.push(1, "write", 1, buf, ring_result(0))
    ring.push(2, "gettid")
    ring.w64(HDR_SQ_TAIL, 3)
    assert ring.enter() == 1  # only gettid completes
    assert ring.r64(HDR_SQ_HEAD) == 3
    assert ring.r64(HDR_CQ_TAIL) == 1
    assert len(task.ring_waiters) == 2
    dependent = task.ring_waiters[1]
    assert dependent.slot == 1 and dependent.deps == {0}
    feed_pipe(machine, task, wfd, b"abc")
    assert ring.enter() == 2  # read completes, releasing the write
    assert ring.result(0) == 3
    assert ring.result(1) == 3
    assert ring.r64(HDR_CQ_TAIL) == 3
    assert bytes(task.stdout).endswith(b"abc")
    assert not task.ring_waiters


def test_min_complete_blocks_until_wakeup_fires():
    """ring_wait: the task blocks cooperatively until the parked entry's
    wakeup (a timed host event feeding the pipe) posts enough CQEs."""
    machine, task = idle_machine()
    kernel = machine.kernel
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    data = task.mem.map_anywhere(4096, Perm.RW)
    task.mem.write(data, b"xy", check=None)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "read", rfd, buf, 8)
    ring.w64(HDR_SQ_TAIL, 1)

    fed_at = 400_000

    def feed():
        # Direct buffer append: only a ring wakeup can observe this.
        desc = task.fdtable.get(wfd)
        desc.pipe.buffer += b"xy"

    kernel.post_event_in(fed_at, feed)
    before = machine.clock
    assert ring.enter_blocking(min_complete=1) is not None
    assert machine.clock - before >= fed_at
    assert ring.r64(HDR_CQ_TAIL) == 1
    assert ring.result(0) == 2
    assert not task.ring_waiters


def test_min_complete_returns_short_when_nothing_can_post():
    """A wait for more CQEs than parked entries can ever post returns
    instead of deadlocking once the waiter set drains empty."""
    machine, task = idle_machine()
    ring = AsyncRingMem(machine, task)
    ring.push(0, "getpid")
    ring.w64(HDR_SQ_TAIL, 1)
    # min_complete=5 can never be reached: 1 entry, no waiters remain.
    assert ring.enter_blocking(min_complete=5) == 1
    assert ring.r64(HDR_CQ_TAIL) == 1


def test_nanosleep_parks_and_completes_when_time_advances():
    machine, task = idle_machine()
    req = task.mem.map_anywhere(4096, Perm.RW)
    task.mem.write_u64(req, 0, check=None)
    task.mem.write_u64(req + 8, 500_000, check=None)  # 500us
    ring = AsyncRingMem(machine, task)
    ring.push(0, "nanosleep", req, 0)
    ring.push(1, "getpid")
    ring.w64(HDR_SQ_TAIL, 2)
    before = machine.clock
    assert ring.enter() == 1  # getpid completes; the sleep parks
    assert len(task.ring_waiters) == 1
    assert ring.enter_blocking(min_complete=2) is not None
    assert ring.result(0) == 0
    assert ring.result(1) == task.pid
    # 500us at ~2 GHz: simulated time genuinely advanced.
    assert machine.clock - before > 500_000
    assert not task.ring_waiters


def test_sync_and_async_drains_are_result_identical():
    """The same op list posts the same result to the same CQ slot either
    way — only completion order (cq_tail vs slot) differs."""
    results = {}
    for use_async in (False, True):
        machine, task = idle_machine()
        machine.fs.create("/data.bin", b"abcdef")
        path = task.mem.map_anywhere(4096, Perm.RW)
        task.mem.write(path, b"/data.bin\x00", check=None)
        buf = path + 128
        ring = AsyncRingMem(machine, task)
        ring.push(0, "open", path, 0, 0)
        ring.push(1, "read", ring_result(0), buf, 6)
        ring.push(2, "close", ring_result(0))
        ring.push(3, "lseek", 999, 0, 0)
        ring.push(4, "close", ring_result(3))
        ring.push(5, "getpid")
        ring.w64(HDR_SQ_TAIL, 6)
        flags = RING_ENTER_ASYNC if use_async else 0
        assert ring.enter_blocking(min_complete=6 if use_async else 0,
                                   flags=flags) is not None
        results[use_async] = [ring.result(s) for s in range(6)]
        assert ring.r64(HDR_CQ_TAIL) == 6
    assert results[False] == results[True]


def test_async_obs_events():
    """ring_park/ring_complete events carry attribution; a parked entry
    still counts exactly once toward ring_entries."""
    tracer = Tracer()
    machine, task = idle_machine(tracer=tracer)
    rfd, wfd = make_pipe(machine, task)
    buf = task.mem.map_anywhere(4096, Perm.RW)
    ring = AsyncRingMem(machine, task)
    ring.push(0, "getpid")
    ring.push(1, "read", rfd, buf, 8, user_data=0xB1)
    ring.push(2, "getpid")
    ring.w64(HDR_SQ_TAIL, 3)
    assert ring.enter() == 2
    feed_pipe(machine, task, wfd, b"z")
    assert ring.enter() == 1
    assert tracer.ring_parks == 1
    assert tracer.ring_completes == 1
    assert tracer.ring_entries == 3  # 2 inline + 1 parked completion
    enters = [e.data for e in tracer.events if e.kind == K.RING_ENTER]
    assert enters[0]["submitted"] == 3
    assert enters[0]["completed"] == 2
    assert enters[0]["parked"] == 1
    parks = [e for e in tracer.events if e.kind == K.RING_PARK]
    completes = [e for e in tracer.events if e.kind == K.RING_COMPLETE]
    assert len(parks) == 1 and parks[0].data["name"] == "read"
    assert parks[0].data["user_data"] == 0xB1
    assert len(completes) == 1
    assert completes[0].data["name"] == "read"
    assert completes[0].data["ret"] == 1
    assert completes[0].data["waited"] >= 0


def test_async_efault_only_when_nothing_consumed():
    machine, task = idle_machine()
    assert machine.kernel.dispatch(
        task, RING_ENTER, (0xDEAD0000, 0, 0, RING_ENTER_ASYNC, 0, 0)
    ) == -errno.EFAULT


# ------------------------------------------------------------ guest level
def run_async_guest(tool=None):
    tracer = Tracer()
    machine = Machine(tracer=tracer)
    process = machine.load(build_uring_async_guest())
    if tool is not None:
        from repro.interpose.registry import attach
        from repro.interpose.api import passthrough_interposer

        attach(machine, process, tool, interposer=passthrough_interposer)
    arm_repeating_signal(machine, process.task)
    arm_pipe_feeder(machine, process.task, delay=150_000, interval=60_000)
    machine.run(max_instructions=2_000_000)
    return machine, process, tracer


@pytest.mark.parametrize("tool", [None, "lazypoline", "zpoline"])
def test_guest_async_submit_wait_survives_signals(tool):
    """submit_async + wait(3): the parked read survives signal
    interruptions of the wait and completes when the feeder writes."""
    machine, process, tracer = run_async_guest(tool)
    assert process.task.exit_code == 15
    assert tracer.ring_parks >= 1
    assert tracer.ring_completes == tracer.ring_parks  # no lost wakeups
    completes = [e.data for e in tracer.events if e.kind == K.RING_COMPLETE]
    assert completes[0]["name"] == "read"
    assert completes[0]["ret"] >= 1


def test_guest_async_matches_sync_invariants():
    """The async guest's ring state after exit mirrors the sync one:
    every consumed entry has exactly one posted CQE."""
    machine, process, tracer = run_async_guest()
    enters = [e.data for e in tracer.events if e.kind == K.RING_ENTER]
    consumed = sum(e["completed"] + e.get("parked", 0) for e in enters)
    posted = sum(e["completed"] for e in enters) + tracer.ring_completes
    assert consumed == 3
    assert posted == 3


# ------------------------------------------- event-loop webserver overlap
def test_async_webserver_overlaps_blocking_reads():
    """The acceptance criterion: ONE worker keeps >= 4 blocking reads
    in flight at once.  Client think time is made long relative to a
    full service wave, so at the moment the read wave submits no
    connection has data yet — every read must park, and the worker's
    single ring_wait overlaps them all."""
    from repro.workloads.webserver import NGINX, ServerWorkload

    tracer = Tracer()
    machine = Machine(tracer=tracer)
    workload = ServerWorkload(machine, NGINX, file_size=4096,
                              batched="async", async_depth=6)
    rps = workload.benchmark(requests=24, warmup=4, connections=6,
                             client_cycles_per_request=120_000)
    assert rps > 0
    peak = max(t.ring_parked_peak for t in machine.kernel.tasks.values())
    assert peak >= 4
    assert tracer.ring_parks > 0
    assert tracer.ring_completes == tracer.ring_parks


def test_async_webserver_beats_sync_batched_when_clients_are_instant():
    """With zero think time the async leg degenerates gracefully: no
    parking (data is always ready), same request accounting."""
    from repro.workloads.webserver import NGINX, ServerWorkload

    tracer = Tracer()
    machine = Machine(tracer=tracer)
    workload = ServerWorkload(machine, NGINX, file_size=4096,
                              batched="async", async_depth=4)
    rps = workload.benchmark(requests=24, warmup=4, connections=4)
    assert rps > 0
    assert tracer.ring_enters > 0


# --------------------------------------- RET_TRAP re-arm (regression fix)
def build_retrap_rearm_guest():
    """A SIGSYS handler that *retries* the trapped entry.

    The ring is [getpid, mkdir (seccomp RET_TRAP), getpid].  The handler
    rewrites the trapped SQE's sysno to getpid and rewinds ``sq_head`` to
    re-arm it; the GuestRing re-enter loop then re-drains from slot 1.
    The regression this pins: the sync drain must couple ``cq_tail`` to
    ``sq_head`` so the retried entry *overwrites* its stale -EINTR CQE —
    an incrementing cq_tail would double-count it (tail 5, not 3).
    Exit code packs: bit0 handler ran exactly once, bit1 slot 1 completed
    with the pid, bit2 cq_tail == 3.  Expected: 7.
    """
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    # scratch page: handler counter @0, ring base @8, pid @16
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    a.mov_imm("rdi", SIGSYS)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.store("r14", 16, "rax")
    ring = GuestRing(a, entries=4, base="r9")
    ring.emit_mmap()
    a.store("r14", 8, "r9")  # handler needs the ring base
    ring.push("getpid")
    ring.push("mkdir", "r14", 0o755)  # path arg unused: the gate traps it
    ring.push("getpid")
    ring.submit()  # re-enter loop resumes after the handler's rewind
    a.mov_imm("rdi", 0)
    a.load("rdx", "r14", 0)
    a.cmpi("rdx", 1)
    a.jnz("count_wrong")
    a.ori("rdi", 1)
    a.label("count_wrong")
    ring.load_result("rdx", 1)
    a.load("rcx", "r14", 16)
    a.cmp("rdx", "rcx")
    a.jnz("slot1_wrong")
    a.ori("rdi", 2)
    a.label("slot1_wrong")
    a.load("rcx", "r14", 8)
    a.load("rdx", "rcx", HDR_CQ_TAIL)
    a.cmpi("rdx", 3)
    a.jnz("tail_wrong")
    a.ori("rdi", 4)
    a.label("tail_wrong")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("handler")
    a.load("rax", "r14", 0)
    a.inc("rax")
    a.store("r14", 0, "rax")
    a.load("rcx", "r14", 8)  # ring base
    a.mov_imm("rax", NR["getpid"])
    a.store("rcx", sqe_offset(1) + SQE_SYSNO, "rax")  # re-arm slot 1
    a.mov_imm("rax", 1)
    a.store("rcx", HDR_SQ_HEAD, "rax")  # rewind: retry from slot 1
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return image_from_assembler("retrap_rearm", a, entry="_start")


def test_retrap_handler_rearming_entry_does_not_double_complete():
    machine = Machine()
    process = machine.load(build_retrap_rearm_guest())
    process.task.seccomp_filters.append(
        FilterBuilder.deny_syscalls([NR["mkdir"]], SECCOMP_RET_TRAP)
    )
    machine.run(max_instructions=2_000_000)
    assert not process.alive
    assert process.term_signal is None
    assert process.task.exit_code == 7
