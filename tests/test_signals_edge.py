"""Signal edge cases: SA_NODEFER, mask save/restore, handler re-registration."""

from __future__ import annotations

from repro.kernel.signals import SA_NODEFER, SIGUSR1, SIGUSR2
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, run_program


def _register(a, sig, act_label):
    a.mov_imm("rdi", sig)
    a.mov_imm("rsi", act_label)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()


def _raise_self(a, sig):
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", sig)
    a.mov_imm("rax", NR["kill"])
    a.syscall()


def test_sigmask_restored_after_handler(machine):
    """The handler-entry mask (signal auto-blocked) is undone by sigreturn,
    so a second raise delivers a second time."""
    b = asm()
    b.label("_start")
    emit_syscall(b, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    b.mov("r15", "rax")
    _register(b, SIGUSR1, "act")
    _raise_self(b, SIGUSR1)
    _raise_self(b, SIGUSR1)
    b.load("rdi", "r15", 0)
    b.mov_imm("rax", NR["exit_group"])
    b.syscall()
    b.label("handler")
    b.load("rcx", "r15", 0)
    b.inc("rcx")
    b.store("r15", 0, "rcx")
    b.ret()
    b.align(8, fill=0)
    b.label("act")
    b.dq("handler")
    b.dq(0)
    b.dq(0)
    b.dq(0)
    _proc, code = run_program(machine, finish(b))
    assert code == 2  # both deliveries ran


def test_sa_mask_blocks_other_signal_during_handler(machine):
    """sa_mask adds SIGUSR2 to the mask while handling SIGUSR1."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r15", "rax")
    _register(a, SIGUSR1, "act1")
    _register(a, SIGUSR2, "act2")
    _raise_self(a, SIGUSR1)
    # by now both handlers ran; order recorded at [r15]: h1 completes
    # BEFORE h2 starts because USR2 was masked during h1
    a.load("rdi", "r15", 8)  # second event
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("h1")
    _raise_self(a, SIGUSR2)  # pends: masked by sa_mask
    a.mov_imm("rcx", 1)
    a.load("rdx", "r15", 16)
    a.cmpi("rdx", 0)
    a.jnz("skip1")
    a.store("r15", 0, "rcx")  # first event = h1 (slot 0)
    a.mov_imm("rdx", 1)
    a.store("r15", 16, "rdx")
    a.label("skip1")
    a.ret()
    a.label("h2")
    a.mov_imm("rcx", 2)
    a.load("rdx", "r15", 16)
    a.cmpi("rdx", 1)
    a.jnz("skip2")
    a.store("r15", 8, "rcx")  # second event = h2 (slot 1)
    a.mov_imm("rdx", 2)
    a.store("r15", 16, "rdx")
    a.label("skip2")
    a.ret()
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(0)
    a.dq(0)
    a.dq(1 << SIGUSR2)  # sa_mask blocks USR2 during h1
    a.label("act2")
    a.dq("h2")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 2  # h2 ran strictly after h1 finished


def test_sa_nodefer_flag_parsed(machine):
    a = asm()
    a.label("_start")
    _register(a, SIGUSR1, "act")
    emit_exit(a, 0)
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(SA_NODEFER)
    a.dq(0)
    a.dq(0)
    a.label("handler")
    a.ret()
    proc, code = run_program(machine, finish(a))
    assert code == 0
    assert proc.task.sighand.get(SIGUSR1).flags & SA_NODEFER


def test_reregistration_returns_old_handler(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r15", "rax")
    _register(a, SIGUSR1, "act1")
    # second registration with oldact pointer
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act2")
    a.mov("rdx", "r15")
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.load("rcx", "r15", 0)  # oldact.handler
    a.mov_imm("rbx", "h1")
    a.cmp("rcx", "rbx")
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    a.label("h1")
    a.ret()
    a.label("h2")
    a.ret()
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("act2")
    a.dq("h2")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0
