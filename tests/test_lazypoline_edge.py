"""lazypoline edge cases: page-straddling rewrites, RWX code, nesting."""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.arch.isa import CALL_RAX_BYTES
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.kernel.syscalls.table import NR
from repro.loader.image import image_from_assembler
from repro.mem.pages import PAGE_SIZE, Perm

from tests.conftest import asm, emit_exit, emit_syscall, finish


def test_rewrite_of_page_straddling_syscall(machine):
    """A two-byte syscall whose bytes cross a page boundary: the slow path
    must flip permissions on *both* pages for the rewrite."""
    base = 0x400000
    a = Assembler(base=base)
    a.label("_start")
    a.mov_imm("rax", NR["getpid"])
    # pad so the syscall's 0F lands on the last byte of the first page
    target = PAGE_SIZE - 1  # offset of the syscall's first byte
    while (len(a.assemble()) if False else a.here() - base) < target:
        a.nop()
    a.label("site")
    a.syscall()  # 0F at page end, 05 at next page start
    emit_exit(a, 0)
    image = image_from_assembler("straddle", a, entry="_start")
    assert image.symbols["site"] == base + PAGE_SIZE - 1

    proc = machine.load(image)
    tr = TraceInterposer()
    tool = Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert "getpid" in tr.names
    site = image.symbols["site"]
    assert site in tool.rewritten
    assert proc.task.mem.read(site, 2, check=None) == CALL_RAX_BYTES
    # both pages are back to their original permissions
    assert proc.task.mem.perm_at(base) == Perm.RX
    assert proc.task.mem.perm_at(base + PAGE_SIZE) == Perm.RX


def test_rewrite_preserves_rwx_on_jit_pages(machine):
    """Rewriting inside an RWX (JIT) page must restore RWX, not RX —
    otherwise subsequent code generation in the same page faults."""
    a = asm()
    a.label("_start")
    # mmap RWX page
    emit_syscall(a, "mmap", 0, 4096, 7, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # write `mov eax, getpid; syscall; ret` twice at different offsets
    a.mov_imm("rcx", int.from_bytes(
        bytes((0xB8, NR["getpid"], 0, 0, 0, 0x0F, 0x05, 0xC3)), "little"))
    a.store("r12", 0, "rcx")
    a.call_reg("r12")
    # second generation pass into the SAME page (fails if perms were lost);
    # rcx was clobbered by the first (real) syscall, so reload the code
    a.mov_imm("rcx", int.from_bytes(
        bytes((0xB8, NR["getpid"], 0, 0, 0, 0x0F, 0x05, 0xC3)), "little"))
    a.store("r12", 64, "rcx")
    a.lea("rbx", "r12", 64)
    a.call_reg("rbx")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert tr.count("getpid") == 2
    rwx_page = proc.task.regs.read_name("r12")
    assert proc.task.mem.perm_at(rwx_page) == Perm.RWX


def test_interposer_syscalls_not_recursively_interposed(machine):
    """do_syscall from inside the interposer must not re-enter it."""
    depth = {"current": 0, "max": 0}

    def tracking(ctx):
        depth["current"] += 1
        depth["max"] = max(depth["max"], depth["current"])
        ret = ctx.do_syscall()
        depth["current"] -= 1
        return ret

    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 5)
    a.label("loop")
    emit_syscall(a, "getpid")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc, tracking)
    machine.run_process(proc)
    assert depth["max"] == 1


def test_two_processes_one_lazypoline_each(machine):
    """Independent tools on independent processes don't interfere."""
    tr1, tr2 = TraceInterposer(), TraceInterposer()

    def prog(tag, code):
        a = asm()
        a.label("_start")
        emit_syscall(a, "getpid")
        emit_exit(a, code)
        return finish(a, name=tag)

    p1 = machine.load(prog("a", 1))
    p2 = machine.load(prog("b", 2))
    Lazypoline._install(machine, p1, tr1)
    Lazypoline._install(machine, p2, tr2)
    machine.run()
    assert p1.exit_code == 1 and p2.exit_code == 2
    assert tr1.names == ["getpid", "exit_group"]
    assert tr2.names == ["getpid", "exit_group"]


def test_sysenter_also_rewritten(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", NR["getpid"])
    a.label("site")
    a.sysenter()
    emit_exit(a, 0)
    img = finish(a)
    proc = machine.load(img)
    tr = TraceInterposer()
    tool = Lazypoline._install(machine, proc, tr)
    machine.run_process(proc)
    assert "getpid" in tr.names
    assert img.symbols["site"] in tool.rewritten


def test_syscall_from_signal_handler_rewritten_lazily(machine):
    """Fig. 3 ②: handler syscalls flow through the hybrid paths."""
    from repro.kernel.signals import SIGUSR1

    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rbx", 2)
    a.label("again")
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    a.dec("rbx")
    a.jnz("again")
    emit_exit(a, 0)
    a.label("handler")
    a.label("handler_site")
    emit_syscall(a, "gettid")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    img = finish(a)
    proc = machine.load(img)
    tr = TraceInterposer()
    tool = Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert tr.count("gettid") == 2  # both deliveries interposed
    # The handler's gettid site was rewritten on its first execution and
    # reused from the fast path on the second.
    handler_sites = [s for s in tool.rewritten
                     if img.symbols["handler"] <= s < img.symbols["act"]]
    assert handler_sites
