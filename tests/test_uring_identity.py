"""Ring-vs-unbatched identity matrix.

One logical syscall program is built two ways:

* **direct** — each operation is an ordinary ``syscall`` instruction, its
  result stored into a results array;
* **ring** — the same operations are SQEs (dependencies expressed as
  ``ring_result`` links instead of register moves), drained by a single
  ``ring_enter``, CQ results copied into the same array.

Both variants write the raw results array to stdout, so a byte-exact
stdout comparison proves every operation returned the identical value —
fds, byte counts, and errnos included — across every interposition tool,
core count, and interpreter tier.  Batching must be a pure performance
transform: results, filesystem effects, fault injection, and per-entry
observability all have to come out the same.
"""

from __future__ import annotations

import struct

import pytest

from repro.arch.encode import Assembler
from repro.faults.injector import FaultInjector, FaultRule
from repro.faults.oracle import run_guest
from repro.kernel import errno
from repro.kernel.syscalls.table import NR
from repro.libc.uring import GuestRing, ring_result
from repro.loader.image import image_from_assembler
from repro.mem import layout

pytestmark = pytest.mark.uring

FILE_DATA = b"hello ring!!"  # 12 bytes

#: The shared operation list.  Args are ints, the label "path", a
#: ("BUF", disp) pointer into the scratch page, or ("RES", j) — the result
#: of operation j (a register reload in the direct build, a ring_result
#: link in the ring build).  Note op 6 reuses the fd after close: both
#: builds must surface the same -EBADF.
OPS = (
    ("open", ("path", 0, 0)),
    ("read", (("RES", 0), ("BUF", 256), 12)),
    ("lseek", (("RES", 0), 6, 0)),
    ("read", (("RES", 0), ("BUF", 280), 6)),
    ("fstat", (("RES", 0), ("BUF", 320))),
    ("close", (("RES", 0),)),
    ("lseek", (("RES", 0), 0, 0)),
    ("getpid", ()),
)

_ARG_REGS = ("rdi", "rsi", "rdx", "r10", "r8", "r9")
_RESULTS_BYTES = 8 * len(OPS)


def _seed(machine):
    machine.fs.create("/id.txt", FILE_DATA)


def _prologue(a):
    """Map the scratch page (results array @0, buffers @256+) into r14."""
    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")


def _epilogue(a):
    """write(1, results, len) then exit_group(0) — identical both ways."""
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r14")
    a.mov_imm("rdx", _RESULTS_BYTES)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    a.align(8, fill=0)
    a.label("path")
    a.db(b"/id.txt\x00")


def build_direct_image():
    a = Assembler(base=layout.CODE_BASE)
    _prologue(a)
    for j, (name, args) in enumerate(OPS):
        for reg, arg in zip(_ARG_REGS, args):
            if isinstance(arg, tuple) and arg[0] == "RES":
                a.load(reg, "r14", 8 * arg[1])
            elif isinstance(arg, tuple) and arg[0] == "BUF":
                a.lea(reg, "r14", arg[1])
            else:
                a.mov_imm(reg, arg)
        a.mov_imm("rax", NR[name])
        a.syscall()
        a.store("r14", 8 * j, "rax")
    _epilogue(a)
    return image_from_assembler("identity-direct", a, entry="_start")


def build_ring_image():
    a = Assembler(base=layout.CODE_BASE)
    _prologue(a)
    ring = GuestRing(a, entries=len(OPS), base="r9")
    ring.emit_mmap()
    for name, args in OPS:
        resolved = []
        for reg, arg in zip(_ARG_REGS[:4], args):
            if isinstance(arg, tuple) and arg[0] == "RES":
                resolved.append(ring_result(arg[1]))
            elif isinstance(arg, tuple) and arg[0] == "BUF":
                a.lea("r8", "r14", arg[1])
                resolved.append("r8")
            else:
                resolved.append(arg)
        ring.push(name, *resolved)
    ring.submit()
    for j in range(len(OPS)):
        ring.load_result("rax", j)
        a.store("r14", 8 * j, "rax")
    _epilogue(a)
    return image_from_assembler("identity-ring", a, entry="_start")


BUILDERS = {"direct": build_direct_image, "ring": build_ring_image}


def _report(variant, tool=None, *, cores=1, superblocks=True, injector=None):
    return run_guest(
        BUILDERS[variant],
        tool,
        cores=cores,
        setup=_seed,
        injector=injector,
        machine_opts={"superblocks": superblocks},
    )


def _results(report):
    return struct.unpack(f"<{len(OPS)}q", report.stdout)


def test_direct_baseline_results_are_sane():
    report = _report("direct")
    assert not report.crashed and report.exit == 0
    res = _results(report)
    fd = res[0]
    assert fd >= 3
    assert res[1] == 12              # full read
    assert res[2] == 6               # lseek to 6
    assert res[3] == 6               # tail read
    assert res[4] == 0               # fstat ok
    assert res[5] == 0               # close ok
    assert res[6] == -errno.EBADF    # use-after-close
    assert res[7] >= 1               # getpid


@pytest.mark.parametrize("tool", [None, "lazypoline", "zpoline", "ptrace"])
@pytest.mark.parametrize("cores", [1, 2])
@pytest.mark.parametrize("superblocks", [True, False])
def test_identity_matrix(tool, cores, superblocks):
    """Ring and direct builds are observationally identical everywhere."""
    baseline = _report("direct")
    for variant in ("direct", "ring"):
        report = _report(variant, tool, cores=cores, superblocks=superblocks)
        assert not report.crashed, (variant, tool, cores, superblocks)
        assert report.exit == 0, (variant, tool, cores, superblocks)
        assert report.stdout == baseline.stdout, (
            variant, tool, cores, superblocks
        )
        assert report.fs == baseline.fs, (variant, tool, cores, superblocks)


def test_fault_injection_identical_across_variants():
    """An injected per-syscall fault lands on the same logical operation
    whether that operation is a direct syscall or a ring entry."""
    reports = {}
    for variant in ("direct", "ring"):
        injector = FaultInjector(
            rules=[FaultRule(errno=errno.EIO, name="read", max_injections=1)]
        )
        reports[variant] = _report(variant, "lazypoline", injector=injector)
    assert reports["direct"].stdout == reports["ring"].stdout
    res = _results(reports["ring"])
    assert res[1] == -errno.EIO   # first read faulted...
    assert res[3] == 6            # ...second read untouched


def test_cycles_identical_across_interpreter_tiers():
    """Superblock tiering must not change the simulated cost of a drain."""
    on = _report("ring", "lazypoline", superblocks=True)
    off = _report("ring", "lazypoline", superblocks=False)
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert on.stdout == off.stdout


def test_interposition_stream_collapses_to_one_crossing():
    """Tools with full expressiveness see each direct op individually but
    exactly one ring_enter for the batched build — per-entry visibility
    moves to the kernel obs stream, not the tool."""
    direct = _report("direct", "lazypoline")
    ring = _report("ring", "lazypoline")
    direct_names = [n for _, n in direct.trace]
    ring_names = [n for _, n in ring.trace]
    for name, _ in OPS:
        assert name in direct_names
    assert ring_names.count("ring_enter") == 1
    assert "open" not in ring_names
    assert "fstat" not in ring_names
    # The epilogue write/exit are direct syscalls in both builds.
    assert direct_names[-2:] == ring_names[-2:] == ["write", "exit_group"]
