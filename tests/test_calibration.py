"""Cost-model calibration: the DESIGN.md §5 identities.

These are fast, low-iteration versions of the Table II bands that keep the
calibration honest during development; the full measurement lives in
``benchmarks/test_table2_micro.py``.
"""

from __future__ import annotations

import pytest

from repro.arch.isa import Mnemonic
from repro.cpu.costs import CostModel
from repro.workloads.microbench import (
    NOSYS_SYSNO,
    build_syscall_loop,
    measure_cycles_per_syscall,
    overhead_vs_baseline,
)

ITER = 120


@pytest.fixture(scope="module")
def baseline():
    return measure_cycles_per_syscall("baseline", iterations=ITER)


def ratio(mech, baseline):
    return measure_cycles_per_syscall(mech, iterations=ITER) / baseline


def test_sud_enabled_baseline_band(baseline):
    assert ratio("sud_enabled_allow", baseline) == pytest.approx(1.42, rel=0.15)


def test_zpoline_band(baseline):
    assert ratio("zpoline", baseline) == pytest.approx(1.24, rel=0.15)


def test_lazypoline_noxstate_band(baseline):
    assert ratio("lazypoline_noxstate", baseline) == pytest.approx(1.66, rel=0.15)


def test_lazypoline_band(baseline):
    assert ratio("lazypoline", baseline) == pytest.approx(2.38, rel=0.15)


def test_sud_band(baseline):
    assert ratio("sud", baseline) == pytest.approx(20.8, rel=0.15)


def test_seccomp_user_slower_than_sud(baseline):
    """§II-A: address-range seccomp filtering loses to SUD's selector."""
    assert ratio("seccomp_user", baseline) > ratio("sud", baseline)


def test_ptrace_slowest(baseline):
    assert ratio("ptrace", baseline) > ratio("seccomp_user", baseline)


def test_seccomp_bpf_cheap(baseline):
    assert ratio("seccomp_bpf", baseline) < 2.0


def test_overhead_vs_baseline_helper():
    assert overhead_vs_baseline("zpoline", iterations=ITER) == pytest.approx(
        1.24, rel=0.15
    )


def test_fastpath_without_sud_matches_zpoline(baseline):
    nosud = ratio("lazypoline_nosud_noxstate", baseline)
    zp = ratio("zpoline", baseline)
    assert nosud == pytest.approx(zp, rel=0.05)


def test_microbench_loop_symbols():
    image = build_syscall_loop(10)
    assert "the_syscall" in image.symbols
    assert image.symbols["the_syscall"] > image.entry


def test_nosys_sysno_enters_sled_near_tail():
    from repro.interpose.zpoline.trampoline import SLED_SIZE

    assert SLED_SIZE - NOSYS_SYSNO <= 16  # the paper's "very tail"


# --------------------------------------------------------- model invariants
def test_xsave_cost_scales_per_component():
    model = CostModel()
    costs = [model.xsave_cost(n) for n in range(4)]
    assert costs[0] < costs[1] < costs[2] < costs[3]
    assert costs[3] - costs[2] == costs[2] - costs[1]


def test_copy_cost_linear():
    model = CostModel()
    assert model.copy_cost(0) == 0
    assert model.copy_cost(65536) == 65536 // model.copy_bytes_per_cycle


def test_every_mnemonic_has_a_cost():
    model = CostModel()
    for mnemonic in Mnemonic:
        assert mnemonic in model.insn_costs, mnemonic


def test_cycles_to_seconds():
    model = CostModel()
    assert model.cycles_to_seconds(2.1e9) == pytest.approx(1.0)


def test_determinism_across_iteration_counts():
    a = measure_cycles_per_syscall("lazypoline", iterations=100)
    b = measure_cycles_per_syscall("lazypoline", iterations=333)
    assert a == pytest.approx(b, abs=1e-6)  # true steady state
