"""Memory protection keys and the §VI lazypoline security extension."""

from __future__ import annotations

import pytest

from repro.errors import PageFault
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline, LazypolineConfig, gsrel
from repro.kernel.signals import SIGSEGV, SIGUSR1
from repro.kernel.sud import SELECTOR_ALLOW
from repro.kernel.syscalls.table import NR
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, Perm

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


# ------------------------------------------------------------- memory layer
def test_pkey_blocks_user_write():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    key = mem.pkey_alloc()
    mem.assign_pkey(0x1000, PAGE_SIZE, key)
    mem.active_pkru = 2 << (2 * key)  # write-disable
    mem.read(0x1000, 4)  # reads still fine
    with pytest.raises(PageFault):
        mem.write(0x1000, b"x")
    mem.active_pkru = 0
    mem.write(0x1000, b"x")  # open: allowed


def test_pkey_access_disable_blocks_reads():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    key = mem.pkey_alloc()
    mem.assign_pkey(0x1000, PAGE_SIZE, key)
    mem.active_pkru = 1 << (2 * key)  # access-disable
    with pytest.raises(PageFault):
        mem.read(0x1000, 1)


def test_pkey_zero_is_never_restricted():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    mem.active_pkru = 0xFFFFFFFF
    mem.write(0x1000, b"ok")  # key 0 pages ignore PKRU


def test_kernel_access_bypasses_pkeys():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    key = mem.pkey_alloc()
    mem.assign_pkey(0x1000, PAGE_SIZE, key)
    mem.active_pkru = 3 << (2 * key)
    mem.write(0x1000, b"k", check=None)
    assert mem.read(0x1000, 1, check=None) == b"k"


def test_pkey_alloc_free_cycle():
    mem = AddressSpace()
    keys = [mem.pkey_alloc() for _ in range(15)]
    assert keys == list(range(1, 16))
    assert mem.pkey_alloc() == -1  # exhausted
    assert mem.pkey_free(7)
    assert mem.pkey_alloc() == 7
    assert not mem.pkey_free(99)


# ----------------------------------------------------------- guest-visible
def test_wrpkru_rdpkru_roundtrip(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rax", 0xC)
    a.wrpkru("rax")
    a.rdpkru("rbx")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    from tests.conftest import run_program

    _proc, code = run_program(machine, finish(a))
    assert code == 0xC


def test_guest_pkey_syscalls(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    # key = pkey_alloc()
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 0)
    a.mov_imm("rax", NR["pkey_alloc"])
    a.syscall()
    a.mov("rbx", "rax")  # key (should be 1)
    # pkey_mprotect(page, 4096, RW, key)
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov("r10", "rbx")
    a.mov_imm("rax", NR["pkey_mprotect"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jnz("bad")
    # deny writes via PKRU, then try to write -> SIGSEGV kills us (exit 77
    # is never reached)
    a.mov_imm("rax", 2 << 2)  # WD for key 1
    a.wrpkru("rax")
    a.mov_imm("rcx", 1)
    a.store("r12", 0, "rcx")
    emit_exit(a, 77)
    a.label("bad")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    machine.run(until=lambda: not proc.alive)
    assert proc.term_signal == SIGSEGV


def test_fault_message_mentions_pkey():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, Perm.RW)
    key = mem.pkey_alloc()
    mem.assign_pkey(0x1000, PAGE_SIZE, key)
    mem.active_pkru = 2 << (2 * key)
    with pytest.raises(PageFault, match="pkey"):
        mem.write(0x1000, b"x")


# ------------------------------------------------- lazypoline secure mode
def _attack_program():
    """Leak gs_base, overwrite the selector with ALLOW, then getpid.

    If the overwrite succeeds, the getpid bypasses interposition entirely.
    """
    a = asm()
    a.label("_start")
    a.rdgsbase("rbx")  # the attacker learns the selector address
    a.mov_imm("rcx", SELECTOR_ALLOW)
    a.store8("rbx", gsrel.GS_SELECTOR, "rcx")  # the malicious overwrite
    emit_syscall(a, "getpid")  # should be interposed... unless bypassed
    emit_exit(a, 0)
    return finish(a)


def test_selector_overwrite_bypasses_unprotected_lazypoline(machine):
    proc = machine.load(_attack_program())
    tr = TraceInterposer()
    Lazypoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    # The attack worked: getpid ran natively, invisible to the interposer.
    assert "getpid" not in tr.names


def test_pkey_mode_stops_selector_overwrite(machine):
    proc = machine.load(_attack_program())
    tr = TraceInterposer()
    Lazypoline._install(
        machine, proc, tr, LazypolineConfig(protect_gs_with_pkey=True)
    )
    machine.run(until=lambda: not proc.alive)
    # The malicious store faulted: the process died with SIGSEGV before it
    # could make an uninterposed syscall.
    assert proc.term_signal == SIGSEGV
    assert "getpid" not in tr.names  # it never even got to the syscall


def test_pkey_mode_preserves_normal_operation(machine):
    proc = machine.load(hello_image(b"sec\n", exit_code=4))
    tr = TraceInterposer()
    tool = Lazypoline._install(
        machine, proc, tr, LazypolineConfig(protect_gs_with_pkey=True)
    )
    code = machine.run_process(proc)
    assert code == 4
    assert proc.stdout == b"sec\n"
    assert tr.names == ["write", "exit_group"]
    assert tool._pkey >= 1


def test_pkey_mode_signals_still_work(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    emit_syscall(a, "write", 1, "m", 2)
    emit_exit(a, 0)
    a.label("handler")
    emit_syscall(a, "write", 1, "h", 2)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m")
    a.db(b"M\n")
    a.label("h")
    a.db(b"H\n")
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Lazypoline._install(
        machine, proc, tr, LazypolineConfig(protect_gs_with_pkey=True)
    )
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"H\nM\n"
    assert "rt_sigreturn" in tr.names


def test_pkey_domain_closed_again_after_signal_roundtrip(machine):
    """After a full signal + sigreturn + trampoline cycle, application code
    must be back in the closed domain: a selector overwrite still faults."""
    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    # post-signal attack: overwrite the selector
    a.rdgsbase("rbx")
    a.mov_imm("rcx", SELECTOR_ALLOW)
    a.store8("rbx", gsrel.GS_SELECTOR, "rcx")
    emit_exit(a, 99)  # only reached if the domain was left open
    a.label("handler")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    proc = machine.load(finish(a))
    Lazypoline._install(
        machine, proc, TraceInterposer(),
        LazypolineConfig(protect_gs_with_pkey=True),
    )
    machine.run(until=lambda: not proc.alive)
    assert proc.term_signal == SIGSEGV  # the attack faulted, post-signal too


def test_pkey_mode_xstate_still_preserved(machine):
    def clobber(ctx):
        ctx.task.regs.write_xmm(0, 0)
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    a.mov_imm("rax", 0x31)
    a.movq_xg("xmm0", "rax")
    emit_syscall(a, "getpid")
    a.movq_gx("rbx", "xmm0")
    a.cmpi("rbx", 0x31)
    a.jnz("bad")
    emit_exit(a, 0)
    a.label("bad")
    emit_exit(a, 1)
    proc = machine.load(finish(a))
    Lazypoline._install(
        machine, proc, clobber, LazypolineConfig(protect_gs_with_pkey=True)
    )
    assert machine.run_process(proc) == 0
