"""Application-layer tools: the profiler and the defer primitive."""

from __future__ import annotations

import pytest

from repro.apps.profiler import SyscallProfiler
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.sud_tool import SudTool
from repro.interpose.zpoline import Zpoline
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


# ------------------------------------------------------------------ profiler
@pytest.mark.parametrize("Tool", [Lazypoline, Zpoline, SudTool],
                         ids=lambda t: t.__name__)
def test_profiler_counts_and_cycles(Tool, machine):
    proc = machine.load(hello_image())
    profiler = SyscallProfiler()
    Tool._install(machine, proc, profiler)
    machine.run_process(proc)
    report = profiler.report
    names = {s.name for s in report.stats.values()}
    assert {"write", "exit_group"} <= names
    assert report.total_cycles > 0
    write_stat = next(s for s in report.stats.values() if s.name == "write")
    assert write_stat.calls == 1
    assert write_stat.cycles > 0


def test_profiler_counts_errors(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "open", "p", 0, 0)  # ENOENT
    emit_syscall(a, "open", "p", 0, 0)  # ENOENT again
    emit_exit(a, 0)
    a.label("p")
    a.db(b"/missing\x00")
    proc = machine.load(finish(a))
    profiler = SyscallProfiler()
    Lazypoline._install(machine, proc, profiler)
    machine.run_process(proc)
    open_stat = next(
        s for s in profiler.report.stats.values() if s.name == "open"
    )
    assert open_stat.calls == 2
    assert open_stat.errors == 2


def test_profiler_report_formatting(machine):
    proc = machine.load(hello_image())
    profiler = SyscallProfiler()
    Lazypoline._install(machine, proc, profiler)
    machine.run_process(proc)
    text = profiler.report.format()
    assert "write" in text
    assert "% time" in text
    assert "total" in text


# --------------------------------------------------------------------- defer
def test_defer_reexecutes_interposition(machine):
    """ctx.defer parks the task; the same syscall event re-enters the
    interposer after the predicate holds."""
    state = {"visits": 0, "release": False}

    def gate(ctx):
        if ctx.name == "getpid":
            state["visits"] += 1
            if not state["release"]:
                ctx.defer(lambda: state["release"])
                return None
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    Lazypoline._install(machine, proc, gate)
    machine.kernel.post_event(10_000, lambda: state.update(release=True))
    code = machine.run_process(proc)
    assert code == 0
    assert state["visits"] == 2  # deferred once, then completed


def test_defer_supported_flags(machine):
    from repro.interpose.api import TraceInterposer

    seen = {}

    def probe(ctx):
        seen[ctx.mechanism] = ctx.can_defer
        return ctx.do_syscall()

    for Tool in (Lazypoline, Zpoline):
        m_proc = machine if not seen else machine  # same machine fine
        proc = machine.load(hello_image())
        Tool._install(machine, proc, probe)
        machine.run_process(proc)
    assert seen == {"lazypoline": True, "zpoline": True}
    del TraceInterposer


def test_defer_unavailable_raises(machine):
    failures = []

    def try_defer(ctx):
        if ctx.name == "getpid":
            try:
                ctx.defer(lambda: True)
            except RuntimeError:
                failures.append(ctx.mechanism)
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    SudTool._install(machine, proc, try_defer)
    machine.run_process(proc)
    assert failures == ["sud"]


def test_defer_many_tasks_simultaneously(machine):
    """Multiple parked tasks don't nest scheduler invocations (the MVEE
    case that motivated the primitive)."""
    arrivals = {"count": 0}
    TOTAL = 3

    def barrier(ctx):
        if ctx.name == "getpid":
            if not getattr(ctx.task, "_arrived", False):
                ctx.task._arrived = True
                arrivals["count"] += 1
            if arrivals["count"] < TOTAL:
                ctx.defer(lambda: arrivals["count"] >= TOTAL)
                return None
            ctx.task._arrived = False
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    image = finish(a)
    procs = [machine.load(image) for _ in range(TOTAL)]
    for proc in procs:
        Lazypoline._install(machine, proc, barrier)
    machine.run()
    assert all(p.exit_code == 0 for p in procs)
    assert arrivals["count"] == TOTAL
