"""Translation cache: SMC invalidation, generation counters, equivalence.

The decoded-instruction cache (``AddressSpace.insn_cache`` + ``exec_gen``,
populated by ``CPU._translate``) must be invisible: every test here pins a
way self-modifying code or mapping changes could make a cached decode stale,
and asserts execution matches what a from-scratch decode would do.  The
paper's own mechanism is the adversary — lazypoline rewrites ``syscall`` ->
``call rax`` in place through mprotect+write+mprotect, and that exact dance
must invalidate exactly the rewritten site.
"""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.arch.isa import CALL_RAX_BYTES, Mnemonic
from repro.cpu.core import BareTask, CPU, NullEnvironment
from repro.errors import InvalidOpcode
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import Lazypoline
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.mem import layout
from repro.mem.address_space import AddressSpace
from repro.mem.pages import PAGE_SIZE, Perm

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image

CODE = 0x1000
STACK = 0x8000


def bare(code: bytes, *, perm: Perm = Perm.RX, stack: bool = True):
    """Map ``code`` at CODE and return (cpu, task, env) with caching on."""
    mem = AddressSpace()
    size = (len(code) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    mem.map(CODE, size, perm)
    mem.write(CODE, code, check=None)
    if stack:
        mem.map(STACK, PAGE_SIZE, Perm.RW)
    env = NullEnvironment()
    cpu = CPU(env)
    task = BareTask(mem)
    task.regs.rip = CODE
    task.regs.write_name("rsp", STACK + PAGE_SIZE)
    return cpu, task, env


def run_until_hlt(cpu, task, env, max_steps=10_000):
    for _ in range(max_steps):
        if env.halted:
            return
        cpu.step(task)
    raise AssertionError("program did not halt")


# ----------------------------------------------------------------- mechanics
def test_cache_hits_after_first_decode():
    a = Assembler(base=CODE)
    a.mov_imm("rbx", 0)
    a.label("loop")
    a.inc("rbx")
    a.cmpi("rbx", 100)
    a.jnz("loop")
    a.hlt()
    cpu, task, env = bare(a.assemble())
    run_until_hlt(cpu, task, env)
    assert task.regs.read_name("rbx") == 100
    # one miss per distinct site, everything else served from the cache
    assert cpu.cache_misses == 5
    assert cpu.cache_hits > 250
    assert len(task.mem.insn_cache) == 5


def test_cached_and_uncached_agree_per_step():
    a = Assembler(base=CODE)
    a.mov_imm("rax", 7)
    a.mov_imm("rbx", 5)
    a.imul("rax", "rbx")
    a.push("rax")
    a.pop("rcx")
    a.hlt()
    code = a.assemble()
    cpu_c, task_c, env_c = bare(code)
    mem_u = task_c.mem.fork_copy()
    env_u = NullEnvironment()
    cpu_u = CPU(env_u, translation_cache=False)
    task_u = BareTask(mem_u)
    task_u.regs.rip = CODE
    task_u.regs.write_name("rsp", STACK + PAGE_SIZE)
    while not env_c.halted:
        insn_c = cpu_c.step(task_c)
        insn_u = cpu_u.step(task_u)
        assert insn_c == insn_u
        assert task_c.regs.rip == task_u.regs.rip
    assert env_u.halted
    assert env_c.cycles == env_u.cycles
    assert task_c.regs.read_name("rcx") == task_u.regs.read_name("rcx") == 35


# ------------------------------------------------------- SMC by guest stores
def test_guest_store_invalidates_executed_site():
    """A plain store into an RWX page retires the old decode immediately."""
    a = Assembler(base=CODE)
    a.label("_start")
    a.mov_imm("r8", "target")
    a.mov_imm("r9", 0x90)  # nop byte
    a.mov_imm("rcx", 0)
    a.label("target")
    a.inc("rbx")  # 3 bytes, patched to 3 nops below
    a.cmpi("rcx", 1)
    a.jz("done")
    a.inc("rcx")
    a.store8("r8", 0, "r9")
    a.store8("r8", 1, "r9")
    a.store8("r8", 2, "r9")
    a.jmp("target")
    a.label("done")
    a.hlt()
    cpu, task, env = bare(a.assemble(), perm=Perm.RWX)
    run_until_hlt(cpu, task, env)
    # target executed twice; the second pass must see the nops, not the
    # cached inc
    assert task.regs.read_name("rbx") == 1
    # invalidation is page-granular and all code shares one page, so the
    # second pass re-translated: more misses than live cache entries
    assert cpu.cache_misses > len(task.mem.insn_cache)


def test_kernel_side_write_invalidates():
    """check=None writes (ptrace POKEDATA-style patches) also invalidate."""
    a = Assembler(base=CODE)
    a.inc("rbx")
    a.hlt()
    cpu, task, env = bare(a.assemble())
    cpu.step(task)
    assert task.regs.read_name("rbx") == 1
    task.regs.rip = CODE
    task.mem.write(CODE, b"\x90\x90\x90", check=None)
    insn = cpu.step(task)
    assert insn.mnemonic is Mnemonic.NOP
    assert task.regs.read_name("rbx") == 1


def test_mprotect_write_mprotect_rewrite_is_seen():
    """The lazypoline dance at the unit level: syscall -> call rax in place."""
    target = CODE + 0x100
    code = bytearray(b"\x90" * 0x200)
    code[0:2] = b"\x0f\x05"  # syscall at CODE
    code[0x100] = 0xF4  # hlt at target
    cpu, task, env = bare(bytes(code))
    cpu.step(task)
    assert len(env.syscalls) == 1

    mem = task.mem
    mem.protect(CODE, PAGE_SIZE, Perm.RW)
    mem.write(CODE, CALL_RAX_BYTES, check="write")
    mem.protect(CODE, PAGE_SIZE, Perm.RX)

    task.regs.write_name("rax", target)
    task.regs.rip = CODE
    insn = cpu.step(task)
    assert insn.mnemonic is Mnemonic.CALL_REG
    assert task.regs.rip == target
    # the pushed return address is the site + len(call rax)
    rsp = task.regs.read_name("rsp")
    assert task.mem.read_u64(rsp) == CODE + 2
    assert len(env.syscalls) == 1  # no second syscall from a stale decode


def test_protect_losing_x_faults_next_fetch():
    a = Assembler(base=CODE)
    a.nop()
    a.nop()
    a.hlt()
    cpu, task, env = bare(a.assemble())
    cpu.step(task)
    task.mem.protect(CODE, PAGE_SIZE, Perm.RW)
    from repro.errors import PageFault

    with pytest.raises(PageFault):
        cpu.step(task)


def test_unmap_remap_does_not_revalidate_stale_entries():
    """Generation counters survive unmap: a fresh page at the same address
    must not resurrect decodes from the old mapping."""
    a = Assembler(base=CODE)
    a.inc("rbx")
    a.hlt()
    cpu, task, env = bare(a.assemble())
    cpu.step(task)
    assert task.regs.read_name("rbx") == 1

    mem = task.mem
    mem.unmap(CODE, PAGE_SIZE)
    mem.map(CODE, PAGE_SIZE, Perm.RX)
    mem.write(CODE, b"\x90\x90\x90\xf4", check=None)
    task.regs.rip = CODE
    insn = cpu.step(task)
    assert insn.mnemonic is Mnemonic.NOP
    assert task.regs.read_name("rbx") == 1


# ---------------------------------------------------- region-boundary fetches
def test_fetch_truncation_at_region_boundary():
    """An insn ending exactly at the last executable byte decodes and caches;
    one spilling past it raises InvalidOpcode every time and is never cached."""
    mem = AddressSpace()
    mem.map(CODE, PAGE_SIZE, Perm.RX)  # next page unmapped
    env = NullEnvironment()
    cpu = CPU(env)
    task = BareTask(mem)

    end = CODE + PAGE_SIZE
    # 5-byte mov eax, imm32 occupying the final 5 bytes of the page
    mem.write(end - 5, b"\xb8\x2a\x00\x00\x00", check=None)
    task.regs.rip = end - 5
    insn = cpu.step(task)
    assert insn.mnemonic is Mnemonic.MOV_IMM64
    assert task.regs.read_name("rax") == 0x2A
    assert (end - 5) in mem.insn_cache

    # the same opcode 3 bytes from the end truncates mid-immediate
    mem.write(end - 3, b"\xb8\x2a\x00", check=None)
    task.regs.rip = end - 3
    with pytest.raises(InvalidOpcode):
        cpu.step(task)
    with pytest.raises(InvalidOpcode):  # re-raised, not cached
        cpu.step(task)
    assert (end - 3) not in mem.insn_cache


def test_write_to_second_page_invalidates_spanning_insn():
    """A 10-byte insn crossing a page boundary records both pages' gens."""
    mem = AddressSpace()
    mem.map(CODE, 2 * PAGE_SIZE, Perm.RX)
    env = NullEnvironment()
    cpu = CPU(env)
    task = BareTask(mem)

    site = CODE + PAGE_SIZE - 3  # 48 B8 + imm64: imm bytes live in page 2
    imm1 = 0x1111_2222_3333_4444
    mem.write(site, b"\x48\xb8" + imm1.to_bytes(8, "little"), check=None)
    task.regs.rip = site
    cpu.step(task)
    assert task.regs.read_name("rax") == imm1

    imm2 = 0x5555_6666_7777_8888
    # touch only the second page (the immediate's tail)
    mem.write(CODE + PAGE_SIZE, imm2.to_bytes(8, "little")[1:], check=None)
    task.regs.rip = site
    cpu.step(task)
    expected = int.from_bytes(
        imm1.to_bytes(8, "little")[:1] + imm2.to_bytes(8, "little")[1:], "little"
    )
    assert task.regs.read_name("rax") == expected


# ------------------------------------------------------------ whole machine
def test_lazypoline_rewrite_reexecutes_through_cache():
    """Full stack: the SIGSYS slow-path rewrite must be picked up by the
    cached interpreter on every later loop iteration."""
    results = {}
    for cached in (True, False):
        machine = Machine(translation_cache=cached)
        a = asm()
        a.label("_start")
        a.mov_imm("rbx", 6)
        a.label("loop")
        emit_syscall(a, "getpid")
        a.dec("rbx")
        a.jnz("loop")
        emit_exit(a, 0)
        proc = machine.load(finish(a))
        tool = Lazypoline._install(machine, proc, TraceInterposer())
        code = machine.run_process(proc)
        sites = sorted(tool.rewritten)
        for site in sites:
            assert proc.task.mem.read(site, 2, check=None) == CALL_RAX_BYTES
        results[cached] = (
            code,
            tool.slowpath_hits,
            tool.fastpath_hits,
            sites,
            machine.clock,
            machine.scheduler.total_instructions,
        )
    cpu = None  # noqa: F841 - clarity: compare cached against uncached run
    assert results[True] == results[False]
    # rewrite hit the slow path once per site, then ran hot through the cache
    _code, slow, fast, sites, _clock, _insns = results[True]
    assert slow == 2 and fast == 7 and len(sites) == 2


def test_fork_then_rewrite_in_child_diverges():
    """The child's self-patch must not leak into the parent's cache (and the
    parent's pre-fork cached decode must not leak into the child)."""
    a = asm()
    a.label("_start")
    a.call("fn")  # populate the parent's cache for fn before forking
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    # parent: wait for the child, then run the (unpatched) fn again
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    a.call("fn")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("child")
    # mprotect the code page RWX and patch fn's imm32 from 11 to 22
    emit_syscall(a, "mprotect", layout.CODE_BASE, 4096, 7)
    a.mov_imm("r8", "fn")
    a.mov_imm("r9", 22)
    a.store8("r8", 1, "r9")  # fn+1: low byte of the mov imm32
    a.call("fn")
    a.mov("rdi", "rax")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("fn")
    a.mov_imm("rax", 11)
    a.ret()

    machine = Machine()
    proc = machine.load(finish(a))
    code = machine.run_process(proc)
    assert code == 11  # parent still sees the original fn
    children = [t for t in machine.kernel.tasks.values() if t.parent is proc.task]
    assert len(children) == 1
    assert children[0].exit_code == 22  # child sees its own patch
    assert machine.kernel.cpu.cache_hits > 0


def test_machine_equivalence_cached_vs_uncached():
    out = {}
    for cached in (True, False):
        machine = Machine(translation_cache=cached)
        proc = machine.load(hello_image(b"cache\n", exit_code=3))
        code = machine.run_process(proc)
        out[cached] = (
            code,
            proc.stdout,
            machine.clock,
            machine.scheduler.total_instructions,
        )
    assert out[True] == out[False]


# ------------------------------------------------- superblock (tier-2) blocks
# Tier-2 blocks are keyed by the same per-page generation counters as the
# decoded-instruction cache, and every invalidation path that retires a
# stale decode must also retire every compiled block spanning the page.

def _hot_loop_code():
    a = Assembler(base=CODE)
    a.label("_start")
    a.mov_imm("rbx", 0)
    a.label("loop")
    a.inc("rbx")
    a.addi("rbx", 0)
    a.cmpi("rbx", 200)
    a.jnz("loop")
    a.hlt()
    return a.assemble(), a.address_of("loop")


def _compiled(perm: Perm = Perm.RX):
    """(cpu, mem, head, block): a block compiled and installed at head."""
    code, head = _hot_loop_code()
    cpu, task, env = bare(code, perm=perm)
    block = cpu.compile_superblock(task.mem, head)
    assert block.fn is not None and block.n >= 2
    assert head in task.mem.block_cache.blocks
    return cpu, task.mem, head, block


def test_superblock_write_mid_block_invalidates():
    """A store landing in the middle of a compiled block's page drops it."""
    cpu, mem, head, block = _compiled(perm=Perm.RWX)
    mem.write(head + 3, b"\x90", check=None)
    assert head not in mem.block_cache.blocks
    assert not mem.block_cache.index.get(head >> 12)
    # recompilation against the patched bytes works immediately
    again = cpu.compile_superblock(mem, head)
    assert again.fn is not None
    assert again.g0 == block.g0 + 1


def test_superblock_mprotect_invalidates():
    cpu, mem, head, _ = _compiled()
    mem.protect(CODE, PAGE_SIZE, Perm.RW)
    assert head not in mem.block_cache.blocks


def test_superblock_munmap_invalidates():
    cpu, mem, head, _ = _compiled()
    mem.unmap(CODE, PAGE_SIZE)
    assert head not in mem.block_cache.blocks
    # a fresh mapping at the same address must not resurrect the block
    mem.map(CODE, PAGE_SIZE, Perm.RX)
    code, _ = _hot_loop_code()
    mem.write(CODE, code, check=None)
    assert head not in mem.block_cache.blocks


def test_superblock_unrelated_page_write_keeps_block():
    """Negative control: stores to other pages must not invalidate."""
    cpu, mem, head, block = _compiled()
    mem.write(STACK + 8, b"\xff" * 8, check=None)  # RW data page
    assert mem.block_cache.blocks.get(head) is block
    assert cpu.blocks_invalidated == 0


def test_superblock_fork_isolation():
    """fork_copy starts the child with an empty block cache, and child-side
    SMC never reaches back into the parent's blocks."""
    cpu, mem, head, block = _compiled(perm=Perm.RWX)
    child = mem.fork_copy()
    assert child.block_cache.blocks == {}
    assert child.block_cache is not mem.block_cache
    child.write(head + 3, b"\x90", check=None)
    assert mem.block_cache.blocks.get(head) is block


def test_superblock_lazypoline_rewrite_forces_recompile():
    """Full stack: a hot syscall loop tiers up, then lazypoline's SIGSYS
    rewrite patches `syscall` -> `call rax` inside the loop body — every
    block spanning the patched page must drop and recompile, and the run
    must stay bit-identical to the untiered machine."""
    results = {}
    for tiered in (True, False):
        machine = Machine(superblocks=tiered)
        a = asm()
        a.label("_start")
        a.mov_imm("rbx", 40)
        a.label("loop")
        a.inc("r8")
        a.addi("r8", 2)
        emit_syscall(a, "getpid")
        a.dec("rbx")
        a.jnz("loop")
        emit_exit(a, 0)
        proc = machine.load(finish(a))
        tool = Lazypoline._install(machine, proc, TraceInterposer())
        code = machine.run_process(proc)
        results[tiered] = (
            code,
            tool.slowpath_hits,
            tool.fastpath_hits,
            sorted(tool.rewritten),
            machine.clock,
            machine.scheduler.total_instructions,
        )
        if tiered:
            stats = machine.superblock_stats()
            assert stats["compiled"] >= 1
            assert stats["invalidated"] >= 1  # the rewrite landed mid-loop
    assert results[True] == results[False]
