"""The shared interposer API surface."""

from __future__ import annotations

import pytest

from repro.interpose.api import (
    DenyListInterposer,
    SyscallContext,
    TraceInterposer,
    passthrough_interposer,
)
from repro.kernel import errno
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR, syscall_name

from tests.conftest import hello_image


def _ctx(sysno=39, args=(), do=None):
    machine = Machine()
    proc = machine.load(hello_image())
    return SyscallContext(
        machine.kernel, proc.task, sysno, args, mechanism="test", do_syscall=do
    )


def test_args_padded_to_six():
    ctx = _ctx(args=(1, 2))
    assert ctx.args == (1, 2, 0, 0, 0, 0)


def test_name_resolution():
    assert _ctx(sysno=NR["write"]).name == "write"
    assert _ctx(sysno=9999).name == "sys_9999"


def test_do_syscall_defaults_to_original():
    calls = []
    ctx = _ctx(sysno=1, args=(5,), do=lambda nr, a: calls.append((nr, a)) or 7)
    assert ctx.do_syscall() == 7
    assert calls == [(1, (5, 0, 0, 0, 0, 0))]


def test_do_syscall_override():
    calls = []
    ctx = _ctx(sysno=1, do=lambda nr, a: calls.append((nr, a)) or 0)
    ctx.do_syscall(60, (1,))
    assert calls == [(60, (1, 0, 0, 0, 0, 0))]


def test_do_syscall_unavailable_raises():
    ctx = _ctx(do=None)
    with pytest.raises(RuntimeError):
        ctx.do_syscall()


def test_memory_helpers_roundtrip():
    ctx = _ctx()
    addr = 0x400000  # text is readable
    data = ctx.read_mem(addr, 4)
    assert len(data) == 4
    ctx.write_mem(addr, b"\x90\x90\x90\x90")  # host write bypasses perms
    assert ctx.read_mem(addr, 4) == b"\x90" * 4


def test_trace_interposer_records_and_counts():
    tr = TraceInterposer(capture_results=True)
    ctx = _ctx(sysno=NR["getpid"], do=lambda nr, a: 1234)
    assert tr(ctx) == 1234
    assert tr.names == ["getpid"]
    assert tr.count("getpid") == 1
    assert tr.results == [1234]


def test_denylist_interposer_fallback():
    tr = TraceInterposer()
    deny = DenyListInterposer({NR["mkdir"]: errno.EPERM}, fallback=tr)
    allowed = _ctx(sysno=NR["getpid"], do=lambda nr, a: 5)
    assert deny(allowed) == 5
    assert tr.names == ["getpid"]
    denied = _ctx(sysno=NR["mkdir"])
    assert deny(denied) == -errno.EPERM
    assert deny.blocked == [("mkdir", (0,) * 6)]


def test_passthrough_is_the_dummy_function():
    ctx = _ctx(do=lambda nr, a: 42)
    assert passthrough_interposer(ctx) == 42


def test_errno_helpers():
    assert errno.errno_name(errno.ENOENT) == "ENOENT"
    assert errno.errno_name(40404) == "errno40404"
    assert errno.is_error(-errno.EPERM)
    assert not errno.is_error(0)
    assert not errno.is_error(42)
    assert not errno.is_error(-5000)  # large negatives are valid pointers


def test_syscall_name_lookup():
    assert syscall_name(0) == "read"
    assert syscall_name(231) == "exit_group"
