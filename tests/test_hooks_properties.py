"""Property tests on CPU hooks and xstate serialization."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.arch.decode import decode_one
from repro.arch.isa import MAX_INSN_LEN
from repro.arch.registers import RegisterFile, XComponent
from repro.cpu.core import XSAVE_AREA_SIZE, xrstor_apply, xsave_serialize
from repro.cpu.hooks import reg_effects
from repro.errors import InvalidOpcode


@given(st.binary(min_size=1, max_size=MAX_INSN_LEN))
def test_reg_effects_total_over_decodable_instructions(blob):
    """Every instruction the decoder accepts has defined register effects."""
    try:
        insn = decode_one(blob)
    except InvalidOpcode:
        return
    reads, writes = reg_effects(insn)
    for regid in reads | writes:
        assert regid[0] in ("g", "x", "y", "st")
        if regid[0] != "st":
            assert 0 <= regid[1] < 16


@st.composite
def register_files(draw):
    regs = RegisterFile()
    regs.gpr[:] = draw(
        st.lists(st.integers(0, 2**64 - 1), min_size=16, max_size=16)
    )
    regs.xmm[:] = draw(
        st.lists(st.integers(0, 2**128 - 1), min_size=16, max_size=16)
    )
    regs.ymm_high[:] = draw(
        st.lists(st.integers(0, 2**128 - 1), min_size=16, max_size=16)
    )
    regs.x87[:] = draw(
        st.lists(st.integers(0, 2**64 - 1), min_size=8, max_size=8)
    )
    regs.x87_top = draw(st.integers(0, 8))
    return regs


@given(register_files())
def test_xsave_area_roundtrip_full(regs):
    area = xsave_serialize(regs, XComponent.all())
    assert len(area) == XSAVE_AREA_SIZE
    fresh = RegisterFile()
    xrstor_apply(fresh, area)
    assert fresh.xmm == regs.xmm
    assert fresh.ymm_high == regs.ymm_high
    assert fresh.x87 == regs.x87
    assert fresh.x87_top == regs.x87_top


@given(register_files())
def test_xsave_partial_mask_restores_only_selected(regs):
    area = xsave_serialize(regs, XComponent.SSE)
    fresh = RegisterFile()
    fresh.x87[0] = 0x1234
    xrstor_apply(fresh, area)
    assert fresh.xmm == regs.xmm  # SSE restored
    assert fresh.x87[0] == 0x1234  # x87 untouched


@given(register_files())
def test_snapshot_restore_roundtrip(regs):
    snap = regs.snapshot_xstate(XComponent.all())
    clobbered = regs.copy()
    clobbered.xmm[:] = [0] * 16
    clobbered.x87[:] = [0] * 8
    clobbered.restore_xstate(snap)
    assert clobbered.xmm == regs.xmm
    assert clobbered.x87 == regs.x87


@given(register_files())
def test_register_file_copy_is_deep(regs):
    clone = regs.copy()
    clone.gpr[0] = (regs.gpr[0] + 1) % 2**64
    clone.xmm[5] ^= 1
    assert regs.gpr[0] != clone.gpr[0]
    assert regs.xmm[5] != clone.xmm[5]


def test_syscall_effects_match_abi():
    from repro.arch.encode import Assembler

    a = Assembler()
    a.syscall()
    insn = decode_one(a.assemble())
    reads, writes = reg_effects(insn)
    read_idx = {r[1] for r in reads}
    write_idx = {w[1] for w in writes}
    assert {0, 7, 6, 2, 10, 8, 9} <= read_idx  # rax + six args
    assert write_idx == {0, 1, 11}  # rax, rcx, r11
