"""The seccomp USER_NOTIF supervisor tool."""

from __future__ import annotations

from repro.interpose.api import TraceInterposer
from repro.interpose.usernotif_tool import UserNotifTool
from repro.kernel import errno
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


def test_notify_all_traces_everything(machine):
    proc = machine.load(hello_image(b"un\n", exit_code=3))
    tr = TraceInterposer()
    tool = UserNotifTool._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 3
    assert proc.stdout == b"un\n"
    assert tr.names == ["write", "exit_group"]
    assert tool.notifications == 2


def test_supervisor_denies_syscall(machine):
    def deny_mkdir(ctx):
        if ctx.name == "mkdir":
            return -errno.EPERM
        return ctx.do_syscall()

    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o755)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("p")
    a.db(b"/nope\x00")
    proc = machine.load(finish(a))
    UserNotifTool._install(machine, proc, deny_mkdir)
    assert machine.run_process(proc) == errno.EPERM
    assert not machine.fs.exists("/nope")


def test_supervisor_continue_lets_kernel_execute(machine):
    """Returning None means SECCOMP_USER_NOTIF_FLAG_CONTINUE."""
    seen = []

    def observe(ctx):
        seen.append(ctx.name)
        return None  # continue: the kernel executes it natively

    proc = machine.load(hello_image(b"ok\n"))
    UserNotifTool._install(machine, proc, observe)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"ok\n"
    assert "write" in seen


def test_selective_notification(machine):
    tr = TraceInterposer()
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_syscall(a, "mkdir", "p", 0o755)
    emit_exit(a, 0)
    a.label("p")
    a.db(b"/sel\x00")
    proc = machine.load(finish(a))
    tool = UserNotifTool._install_for_syscalls(machine, proc, [NR["mkdir"]], tr)
    machine.run_process(proc)
    # Only mkdir notified; getpid and exit ran natively.
    assert tr.names == ["mkdir"]
    assert tool.notifications == 1
    assert machine.fs.exists("/sel")


def test_user_notif_is_slower_than_native(machine):
    from repro.kernel.machine import Machine

    def run(with_tool):
        m = Machine()
        p = m.load(hello_image())
        if with_tool:
            UserNotifTool._install(m, p)
        m.run_process(p)
        return m.clock

    assert run(True) > run(False) + 2 * 4 * 1500 - 1  # >= 4 context switches/call
