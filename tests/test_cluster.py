"""Fleet-scale cluster serving: balancer policies, multi-process shards,
cross-process determinism.

The acceptance contract (ISSUE 8): the same ``(shards, smp_seed,
policy)`` must produce the identical report twice — aggregate rps,
latency tuples *and* per-shard obs counters — and a 1-shard cluster must
be byte-identical to a direct :func:`run_workload` webserver run.
Everything in a report is simulated time, so this holds across host
processes, fork or no fork.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import POLICIES, Cluster, LoadBalancer, fnv1a, run_shard
from repro.workloads.runner import run_workload

pytestmark = pytest.mark.cluster

REQUESTS = 48
WARMUP = 6


def small_cluster(**kw):
    kw.setdefault("shards", 2)
    return Cluster(**kw)


# ---------------------------------------------------------------- balancer
def test_fnv1a_is_process_stable():
    # pinned values: the consistent-hash ring must agree across host
    # processes and python versions (builtin hash is salted; this isn't)
    assert fnv1a(b"req-0") == 0xAA072E09CA773097
    assert fnv1a(b"shard-0:vnode-0") == 0x36A253C2CDA696E7
    assert fnv1a(b"req-0") != fnv1a(b"req-1")


def test_round_robin_splits_evenly():
    counts = LoadBalancer(4, "round_robin").plan(100)
    assert counts == [25, 25, 25, 25]


def test_least_conn_splits_evenly_on_homogeneous_shards():
    counts = LoadBalancer(4, "least_conn").plan(100)
    assert counts == [25, 25, 25, 25]


def test_consistent_hash_uses_every_shard_and_is_sticky():
    lb = LoadBalancer(4, "consistent_hash")
    counts = lb.plan(200)
    assert all(c > 0 for c in counts), counts
    assert sum(counts) == 200
    # stickiness: the same key always routes to the same shard
    lb2 = LoadBalancer(4, "consistent_hash")
    assert lb2.assign("user-42") == lb2.assign("user-42")


@pytest.mark.parametrize("policy", POLICIES)
def test_balancer_plan_is_deterministic(policy):
    a = LoadBalancer(3, policy)
    b = LoadBalancer(3, policy)
    assert a.plan(90) == b.plan(90)
    assert a.assignments == b.assignments


def test_balancer_rejects_unknowns():
    with pytest.raises(ValueError, match="policy"):
        LoadBalancer(2, "random")
    with pytest.raises(ValueError, match="shard"):
        LoadBalancer(0)
    with pytest.raises(ValueError, match="policy"):
        Cluster(2, policy="weighted")
    with pytest.raises(ValueError, match="shard"):
        Cluster(0)


def test_starved_shard_is_an_error():
    with pytest.raises(ValueError, match="starves"):
        Cluster(shards=4).shard_configs(3)


# ------------------------------------------------------------- determinism
def test_same_seed_same_report():
    """Same (shards, smp_seed, policy) twice → identical report, down to
    the per-shard obs counters."""
    kw = dict(shards=2, tool="lazypoline", smp_seed=7)
    rep1 = Cluster(**kw).serve(requests=REQUESTS, warmup=WARMUP)
    rep2 = Cluster(**kw).serve(requests=REQUESTS, warmup=WARMUP)
    assert json.dumps(rep1, sort_keys=True) == json.dumps(rep2, sort_keys=True)
    assert rep1["obs"]["counts"] == rep2["obs"]["counts"]
    assert (rep1["obs"]["health_per_shard"]
            == rep2["obs"]["health_per_shard"])


def test_in_process_matches_multi_process():
    """Host process boundaries never leak into the simulated numbers."""
    kw = dict(shards=2, tool=None, smp_seed=3)
    forked = Cluster(processes=True, **kw).serve(requests=REQUESTS,
                                                 warmup=WARMUP)
    inline = Cluster(processes=False, **kw).serve(requests=REQUESTS,
                                                  warmup=WARMUP)
    assert json.dumps(forked, sort_keys=True) == json.dumps(
        inline, sort_keys=True
    )


def test_single_shard_matches_direct_run_workload():
    """shards=1 is byte-identical to the unified runner called directly."""
    rep = Cluster(shards=1, tool="lazypoline", smp_seed=5).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    direct = run_workload(
        "webserver", tool="lazypoline", smp_seed=5, server="nginx",
        cores=1, batched=False, file_size=8192, requests=REQUESTS,
        warmup=WARMUP, connections=None, client_cycles_per_request=0,
    )
    assert json.dumps(rep["results"][0], sort_keys=True) == json.dumps(
        direct, sort_keys=True
    )
    assert rep["requests_per_sec"] == pytest.approx(
        direct["requests_per_sec"]
    )


def test_per_shard_seeds_differ():
    rep = Cluster(shards=2, smp_seed=10).serve(requests=REQUESTS,
                                               warmup=WARMUP)
    assert [r["smp_seed"] for r in rep["results"]] == [10, 11]


# ------------------------------------------------------------- aggregation
def test_report_aggregates_are_consistent():
    rep = small_cluster(tool="lazypoline", batched=True).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    rows = rep["results"]
    assert rep["requests_total"] == sum(r["requests"] for r in rows)
    assert rep["measured_seconds"] == max(
        r["measured_seconds"] for r in rows
    )
    assert rep["requests_per_sec"] == pytest.approx(
        rep["requests_total"] / rep["measured_seconds"]
    )
    assert rep["guest_mips_total"] == pytest.approx(
        sum(rep["guest_mips_per_shard"])
    )
    # merged latency percentiles come from the merged sample set
    merged = sorted(
        s for r in rows for s in r["latency_samples_cycles"]
    )
    assert rep["latency_p50_cycles"] in merged
    assert rep["latency_p99_cycles"] >= rep["latency_p50_cycles"]


def test_obs_merge_sums_shard_counters():
    rep = small_cluster(tool="lazypoline", batched=True).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    per_shard = [run_shard(c) for c in
                 Cluster(shards=2, tool="lazypoline",
                         batched=True).shard_configs(REQUESTS,
                                                     warmup=WARMUP)]
    expect_ring = sum(s["obs"]["ring_enters"] for s in per_shard)
    assert rep["obs"]["ring_enters"] == expect_ring > 0
    assert len(rep["obs"]["health_per_shard"]) == 2
    for kind, total in rep["obs"]["counts"].items():
        assert total == sum(
            s["obs"]["counts"].get(kind, 0) for s in per_shard
        )


def test_batched_ring_leg_crosses_once_per_request():
    """The PR 7 aggregation invariant survives the cluster layer: each
    request's file I/O drains through one ring_enter per shard request."""
    rep = small_cluster(tool="lazypoline", batched=True).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    assert rep["obs"]["ring_enters"] > 0
    assert rep["obs"]["ring_entries"] > rep["obs"]["ring_enters"]


@pytest.mark.parametrize("policy", POLICIES)
def test_policies_serve_end_to_end(policy):
    rep = Cluster(shards=2, policy=policy).serve(requests=REQUESTS,
                                                 warmup=WARMUP)
    assert rep["policy"] == policy
    assert rep["requests_total"] == REQUESTS
    assert rep["requests_per_sec"] > 0
    assert all(c >= 1 for c in rep["requests_per_shard"])


def test_two_shards_scale_throughput():
    """The cheap in-tree cousin of the benchmark's ≥3x@4-shards floor."""
    one = Cluster(shards=1).serve(requests=REQUESTS, warmup=WARMUP)
    two = Cluster(shards=2).serve(requests=REQUESTS, warmup=WARMUP)
    assert two["requests_per_sec"] > 1.5 * one["requests_per_sec"]
