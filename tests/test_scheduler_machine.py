"""Scheduler and Machine facade behaviour."""

from __future__ import annotations

import pytest

from repro.errors import GuestCrash
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.kernel.task import TaskState
from repro.kernel.waits import DeadlockError

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image, run_program


def _spin_image(exit_after: int):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", exit_after)
    a.label("loop")
    a.dec("rbx")
    a.jnz("loop")
    emit_exit(a, 0)
    return finish(a)


def test_two_processes_interleave(machine):
    p1 = machine.load(_spin_image(500))
    p2 = machine.load(_spin_image(500))
    machine.run()
    assert not p1.alive and not p2.alive
    # both made progress; neither starved
    assert p1.task.insn_count > 100
    assert p2.task.insn_count > 100


def test_run_until_predicate(machine):
    proc = machine.load(_spin_image(10_000))
    machine.run(until=lambda: proc.task.insn_count >= 100)
    assert proc.alive
    assert proc.task.insn_count >= 100


def test_max_instructions_bound(machine):
    proc = machine.load(_spin_image(1_000_000))
    machine.run(max_instructions=500)
    assert proc.alive
    assert 400 <= machine.scheduler.total_instructions <= 700


def test_run_process_raises_on_no_exit(machine):
    proc = machine.load(_spin_image(100_000_000))
    with pytest.raises(GuestCrash):
        machine.run_process(proc, max_instructions=1000)


def test_deadlock_detection(machine):
    # a task blocked on a pipe nobody ever writes to
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "r12")
    a.mov_imm("rax", NR["pipe"])
    a.syscall()
    a.load8("rdi", "r12", 0)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["read"])  # blocks forever
    a.syscall()
    emit_exit(a, 0)
    machine.load(finish(a))
    with pytest.raises(DeadlockError):
        machine.run()


def test_deadlock_suppressable(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "r12")
    a.mov_imm("rax", NR["pipe"])
    a.syscall()
    a.load8("rdi", "r12", 0)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 1)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    emit_exit(a, 0)
    proc = machine.load(finish(a))
    machine.run(raise_on_deadlock=False)
    assert proc.alive
    assert proc.task.state is TaskState.BLOCKED


def test_posted_events_fire_in_order(machine):
    fired = []
    machine.kernel.post_event(100, lambda: fired.append("b"))
    machine.kernel.post_event(50, lambda: fired.append("a"))
    machine.kernel.post_event(150, lambda: fired.append("c"))
    machine.load(hello_image())
    machine.run()
    # events with times below the final clock all fired, in time order
    assert fired == ["a", "b", "c"]


def test_nanosleep_advances_clock(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rcx", 0)
    a.store("r12", 0, "rcx")  # 0 seconds
    a.mov_imm("rcx", 1_000_000)  # 1 ms
    a.store("r12", 8, "rcx")
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 0)
    a.mov_imm("rax", NR["nanosleep"])
    a.syscall()
    emit_exit(a, 0)
    proc, code = run_program(machine, finish(a))
    assert code == 0
    # 1 ms at 2.1 GHz = 2.1M cycles
    assert machine.clock >= 2_100_000


def test_zombies_listed(machine):
    proc = machine.load(hello_image())
    machine.run()
    assert proc.task in machine.zombies()


def test_sched_yield_allows_progress(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "sched_yield")
    emit_exit(a, 0)
    _proc, code = run_program(machine, finish(a))
    assert code == 0


def test_machine_seconds_property(machine):
    machine.load(hello_image())
    machine.run()
    assert machine.seconds == pytest.approx(
        machine.clock / machine.costs.frequency_hz
    )


def test_custom_quantum():
    m = Machine(quantum=8)
    p1 = m.load(_spin_image(100))
    p2 = m.load(_spin_image(100))
    m.run()
    assert not p1.alive and not p2.alive


def test_clock_identical_regardless_of_quantum():
    def total(quantum):
        m = Machine(quantum=quantum)
        m.load(_spin_image(200))
        m.run()
        return m.clock

    assert total(4) == total(64) == total(256)
